"""Bench regression gate: compare a fresh BENCH_mgl.json to a baseline.

CI generates a fresh report with ``bench_perf.py`` and compares it to the
committed ``BENCH_mgl.json``.  Two classes of failure:

* **Hash change** (always fatal): any benchmark case present in both
  reports whose placement hash differs.  The legalizer is deterministic
  across machines and Python versions, so a hash change means the
  algorithm's output changed — which must be a deliberate, reviewed
  baseline update, never an accident.
* **Wall-time regression** (tolerance-gated): a case slower than
  ``baseline * (1 + --max-regression)``.  Times are noisy across
  machines, so only cases whose *baseline* time is at least
  ``--min-seconds`` participate, and the threshold is generous by
  default (25%).  Machines slower than the baseline recorder would
  false-positive here; CI runners are faster than the recording box, so
  in practice this only trips on genuine algorithmic slowdowns.

Alongside the gates, the script prints **counter deltas** (insertion
points evaluated, window expansions, gap-cache hit rate) for every
common case whose counters moved — machine-independent early warning
that the search explored differently even when hashes and times pass —
and an explicit ``WARNING`` for every case present in only one report,
so a shrunken fresh run can't silently pass against a full baseline.

Two optional gates ride along: a **tracing-overhead** gate (fatal when
the fresh report's ``tracing_overhead`` section shows sampled tracing
costing more than ``--max-trace-overhead`` percent, or perturbing the
placement at all) and a **run-store trend** gate (``--store DIR``
appends the fresh report to a persistent store and compares each case
against the *median* of its stored history — the cross-run complement
to the single-baseline comparison above).

Usage::

    python benchmarks/check_regression.py BENCH_mgl.json fresh.json
    python benchmarks/check_regression.py baseline.json fresh.json \
        --max-regression 0.25 --min-seconds 0.5
    PYTHONPATH=src python benchmarks/check_regression.py \
        BENCH_mgl.json fresh.json --store .repro-runs

Exit status 0 when clean, 1 on any failure (each printed to stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        data: Dict[str, object] = json.load(handle)
    return data


def compare_hashes(
    baseline: Dict[str, object], fresh: Dict[str, object]
) -> List[str]:
    """Fatal mismatches among cases present in both reports."""
    base_hashes = baseline.get("hashes")
    fresh_hashes = fresh.get("hashes")
    if not isinstance(base_hashes, dict) or not isinstance(fresh_hashes, dict):
        return ["missing 'hashes' section in one of the reports"]
    failures = []
    common = sorted(set(base_hashes) & set(fresh_hashes))
    if not common:
        failures.append("no common benchmark cases between the reports")
    for key in common:
        if base_hashes[key] != fresh_hashes[key]:
            failures.append(
                f"{key}: placement hash changed "
                f"{base_hashes[key]} -> {fresh_hashes[key]}"
            )
    return failures


def one_sided_cases(
    baseline: Dict[str, object], fresh: Dict[str, object]
) -> List[str]:
    """Warnings for cases present in only one of the two reports.

    Not fatal — quick mode legitimately runs a subset of the full
    baseline — but always surfaced, so a fresh report that silently
    dropped cases can't masquerade as a clean full run.
    """
    base_hashes = baseline.get("hashes")
    fresh_hashes = fresh.get("hashes")
    if not isinstance(base_hashes, dict) or not isinstance(fresh_hashes, dict):
        return []
    warnings = []
    only_base = sorted(set(base_hashes) - set(fresh_hashes))
    only_fresh = sorted(set(fresh_hashes) - set(base_hashes))
    if only_base:
        warnings.append(
            f"{len(only_base)} baseline case(s) missing from the fresh "
            f"report (not compared): {', '.join(only_base[:5])}"
            + (" ..." if len(only_base) > 5 else "")
        )
    if only_fresh:
        warnings.append(
            f"{len(only_fresh)} fresh case(s) absent from the baseline "
            f"(not compared): {', '.join(only_fresh[:5])}"
            + (" ..." if len(only_fresh) > 5 else "")
        )
    return warnings


COUNTER_FIELDS = (
    "insertions_evaluated", "window_expansions", "gap_cache_hit_rate",
)


def compare_counters(
    baseline: Dict[str, object], fresh: Dict[str, object]
) -> List[str]:
    """Informational counter deltas for common cases whose work changed.

    A moved counter with an unchanged hash means the search explored
    differently but converged to the same placement — worth a look, not
    a failure.  Counters are machine-independent, so unlike wall time
    these deltas are exact.
    """
    def runs_by_key(report: Dict[str, object]) -> Dict[str, Dict[str, object]]:
        runs = report.get("runs")
        if not isinstance(runs, list):
            return {}
        return {
            f"{r['name']}@{r['scale']}": r
            for r in runs
            if isinstance(r, dict)
        }

    base_runs = runs_by_key(baseline)
    fresh_runs = runs_by_key(fresh)
    deltas = []
    for key in sorted(set(base_runs) & set(fresh_runs)):
        base_run, fresh_run = base_runs[key], fresh_runs[key]
        moved = []
        for metric in COUNTER_FIELDS:
            if metric not in base_run or metric not in fresh_run:
                continue
            base_v = float(base_run[metric])  # type: ignore[arg-type]
            fresh_v = float(fresh_run[metric])  # type: ignore[arg-type]
            if base_v == fresh_v:
                continue
            if metric == "gap_cache_hit_rate":
                moved.append(
                    f"{metric} {100 * base_v:.1f}% -> {100 * fresh_v:.1f}%"
                )
            else:
                sign = "+" if fresh_v > base_v else ""
                moved.append(
                    f"{metric} {int(base_v)} -> {int(fresh_v)} "
                    f"({sign}{int(fresh_v - base_v)})"
                )
        if moved:
            deltas.append(f"{key}: " + ", ".join(moved))
    return deltas


def compare_times(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    max_regression: float,
    min_seconds: float,
) -> List[str]:
    """Wall-time regressions beyond tolerance, on comparable cases."""
    def runs_by_key(report: Dict[str, object]) -> Dict[str, float]:
        runs = report.get("runs")
        if not isinstance(runs, list):
            return {}
        return {
            f"{r['name']}@{r['scale']}": float(r["seconds"])
            for r in runs
            if isinstance(r, dict)
        }

    base_runs = runs_by_key(baseline)
    fresh_runs = runs_by_key(fresh)
    failures = []
    for key in sorted(set(base_runs) & set(fresh_runs)):
        base_s = base_runs[key]
        if base_s < min_seconds:
            continue  # Too fast to measure reliably across machines.
        fresh_s = fresh_runs[key]
        if fresh_s > base_s * (1.0 + max_regression):
            failures.append(
                f"{key}: {fresh_s:.3f}s vs baseline {base_s:.3f}s "
                f"(+{100.0 * (fresh_s / base_s - 1.0):.0f}%, "
                f"limit +{100.0 * max_regression:.0f}%)"
            )
    return failures


def check_parallel_section(fresh: Dict[str, object]) -> List[str]:
    """The fresh report's serial-vs-workers hashes must agree."""
    section = fresh.get("parallel")
    if section is None:
        return []  # Section skipped (--no-parallel-section).
    if not isinstance(section, dict):
        return ["malformed 'parallel' section in the fresh report"]
    if not section.get("hashes_match", False):
        return [
            f"{section.get('name')}: parallel placement hash "
            f"{section.get('parallel_hash')} diverged from serial "
            f"{section.get('serial_hash')}"
        ]
    return []


def check_backend_section(fresh: Dict[str, object]) -> List[str]:
    """The fresh report's scalar-vs-vector gates must hold.

    The vector backend is only legitimate while it reproduces the scalar
    oracle bit-exactly — same placement hash and same number of
    insertion points evaluated — so either mismatch is fatal, as is a
    diverged stacked (vector + workers) placement.
    """
    section = fresh.get("backend")
    if section is None:
        return []  # Section skipped (--no-backend-section) or old report.
    if not isinstance(section, dict):
        return ["malformed 'backend' section in the fresh report"]
    failures = []
    if not section.get("hashes_match", False):
        failures.append(
            f"{section.get('name')}: vector placement hash "
            f"{section.get('vector_hash')} diverged from scalar "
            f"{section.get('scalar_hash')}"
        )
    if not section.get("evals_match", False):
        failures.append(
            f"{section.get('name')}: vector insertions_evaluated diverged "
            f"from scalar"
        )
    if not section.get("stacked_hashes_match", False):
        failures.append(
            f"{section.get('name')}: stacked (vector + workers) placement "
            f"diverged from the scalar run at the same capacity"
        )
    return failures


def check_trace_section(fresh: Dict[str, object]) -> List[str]:
    """The fresh report's trace-structure determinism gate must hold."""
    section = fresh.get("trace_determinism")
    if section is None:
        return []  # Section skipped (--no-trace-section) or old report.
    if not isinstance(section, dict):
        return ["malformed 'trace_determinism' section in the fresh report"]
    failures = []
    if not section.get("structure_match", False):
        failures.append(
            f"{section.get('name')}: trace structure hash "
            f"{section.get('parallel_structure_hash')} ({section.get('workers')}"
            f" workers) diverged from serial "
            f"{section.get('serial_structure_hash')}"
        )
    if not section.get("hashes_match", False):
        failures.append(
            f"{section.get('name')}: traced parallel placement diverged "
            f"from the traced serial run"
        )
    return failures


def check_overhead_section(
    fresh: Dict[str, object],
    max_overhead_pct: float,
    min_seconds: float,
) -> List[str]:
    """The fresh report's tracing-overhead gates must hold.

    Hash divergence between the untraced and sampled-traced run is
    always fatal (observability must never perturb the placement); the
    overhead percentage is gated against ``--max-trace-overhead`` when
    the untraced run is long enough to measure reliably.
    """
    section = fresh.get("tracing_overhead")
    if section is None:
        return []  # Section skipped (--no-overhead-section / quick mode).
    if not isinstance(section, dict):
        return ["malformed 'tracing_overhead' section in the fresh report"]
    failures = []
    name = section.get("name")
    if not section.get("hashes_match", False):
        failures.append(
            f"{name}: sampled-traced placement "
            f"{section.get('sampled_hash')} diverged from the untraced "
            f"run {section.get('plain_hash')}"
        )
    plain_seconds = float(section.get("plain_seconds", 0.0))  # type: ignore[arg-type]
    overhead = float(section.get("overhead_pct", 0.0))  # type: ignore[arg-type]
    if plain_seconds >= min_seconds and overhead > max_overhead_pct:
        failures.append(
            f"{name}: sampled tracing overhead +{overhead:.1f}% exceeds "
            f"the {max_overhead_pct:.0f}% budget "
            f"(k={section.get('sample_every')}, "
            f"plain {plain_seconds:.3f}s vs "
            f"{float(section.get('sampled_seconds', 0.0)):.3f}s)"  # type: ignore[arg-type]
        )
    return failures


def check_store_trends(
    fresh: Dict[str, object],
    store_dir: str,
    max_drift_pct: float,
    history: int,
) -> List[str]:
    """Append the fresh report to a run store and gate on its trends.

    The store accumulates one record per bench case across CI runs
    (seeded via actions/cache), so the wall-time gate compares against
    the **median of history** rather than one committed number — a
    slow runner in the history shifts the median far less than it
    shifts a single baseline.  Each appended key is trended after the
    append; a key needs three stored runs before its time gate engages,
    so a cold store passes trivially while it warms up.
    """
    from repro.obs.runstore import RunStore

    store = RunStore(store_dir)
    added = store.add_bench_report(fresh, label="ci")
    keys = []
    for record in store.records():
        if record.get("id") in set(added):
            key = record.get("key")
            if isinstance(key, str) and key not in keys:
                keys.append(key)
    failures = []
    for key in keys:
        trend = store.trend(key, last=history, max_drift_pct=max_drift_pct)
        if trend.flagged:
            failures.append(f"store trend {key}: {trend.reason}")
        else:
            drift = (
                f"{trend.drift_pct:+.1f}% vs median"
                if trend.drift_pct is not None
                else f"{trend.runs} run(s), trend not yet callable"
            )
            print(f"store trend {key}: ok ({drift})")
    print(
        f"run store {store_dir}: appended {len(added)} record(s), "
        f"{len(store.records())} total"
    )
    return failures


def check_sharded_section(
    fresh: Dict[str, object], max_disp_growth: float
) -> List[str]:
    """The fresh report's sharded-legalization gates must hold.

    Three hard gates plus one budget: the sharded placement must be
    checker-legal; ``shards=1`` must reproduce the unsharded placement
    bit-exactly; workers 0 and N must agree bit-exactly at the fixed
    topology; and the average-displacement drift of the sharded
    topology over the unsharded baseline must stay within
    ``max_disp_growth`` (cross-topology drift is expected and bounded,
    never silent).
    """
    section = fresh.get("sharded")
    if section is None:
        return []  # Section skipped (--no-sharded-section) or old report.
    if not isinstance(section, dict):
        return ["malformed 'sharded' section in the fresh report"]
    failures = []
    name = section.get("name")
    if not section.get("legal", False):
        failures.append(
            f"{name}: sharded placement is not legal "
            f"({section.get('violations')} violations)"
        )
    if not section.get("shards1_match", False):
        failures.append(
            f"{name}: shards=1 placement {section.get('shards1_hash')} "
            f"diverged from the unsharded path "
            f"{section.get('baseline_hash')}"
        )
    if not section.get("workers_match", False):
        failures.append(
            f"{name}: sharded placement {section.get('sharded_workers_hash')}"
            f" ({section.get('workers')} workers) diverged from serial "
            f"{section.get('sharded_hash')} at the same topology"
        )
    drift = float(section.get("disp_delta_pct", 0.0))  # type: ignore[arg-type]
    if drift > 100.0 * max_disp_growth:
        failures.append(
            f"{name}: sharded avg displacement drifted "
            f"+{drift:.1f}% over the unsharded baseline "
            f"(budget +{100.0 * max_disp_growth:.0f}%)"
        )
    return failures


def render_summary(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    failures: List[str],
) -> str:
    """Markdown job summary: per-case table plus the sharded story.

    Written to ``--summary`` (CI points it at ``$GITHUB_STEP_SUMMARY``)
    so a regression is readable from the run page without downloading
    artifacts.
    """
    lines = ["## Bench regression", ""]
    base_hashes = baseline.get("hashes")
    fresh_runs = fresh.get("runs")
    if isinstance(fresh_runs, list) and fresh_runs:
        lines += [
            "| case | cells | time (s) | cells/sec | hash |",
            "|------|------:|---------:|----------:|------|",
        ]
        for run in fresh_runs:
            if not isinstance(run, dict):
                continue
            key = f"{run['name']}@{run['scale']}"
            if not isinstance(base_hashes, dict) or key not in base_hashes:
                status = "new"
            elif base_hashes[key] == run["placement_hash"]:
                status = "match"
            else:
                status = "**CHANGED**"
            lines.append(
                f"| {key} | {run.get('cells')} | {run.get('seconds')} "
                f"| {run.get('cells_per_sec')} | {status} |"
            )
        lines.append("")
    overhead = fresh.get("tracing_overhead")
    if isinstance(overhead, dict):
        status = (
            "ok" if overhead.get("hashes_match") else "**HASH DIVERGED**"
        )
        lines += [
            "### Tracing overhead",
            "",
            f"Sampled (k={overhead.get('sample_every')}) vs untraced on "
            f"{overhead.get('name')}@{overhead.get('scale')}: "
            f"{overhead.get('plain_seconds')}s -> "
            f"{overhead.get('sampled_seconds')}s "
            f"(**{overhead.get('overhead_pct')}%**), "
            f"{overhead.get('span_count')} spans, "
            f"{overhead.get('progress_events')} progress events — "
            f"{status}.",
            "",
        ]
    sharded = fresh.get("sharded")
    if isinstance(sharded, dict):
        lines += [
            "### Sharded legalization",
            "",
            "| cells | shards | workers | cells/sec | reconciled "
            "| disp drift | hashes |",
            "|------:|-------:|--------:|----------:|-----------:"
            "|-----------:|--------|",
        ]
        hash_status = (
            "ok"
            if sharded.get("shards1_match")
            and sharded.get("workers_match")
            and sharded.get("legal")
            else "**FAIL**"
        )
        lines += [
            f"| {sharded.get('cells')} | {sharded.get('shards_effective')} "
            f"| {sharded.get('workers')} | {sharded.get('cells_per_sec')} "
            f"| {sharded.get('reconciled')} "
            f"| {sharded.get('disp_delta_pct')}% | {hash_status} |",
            "",
        ]
    if failures:
        lines += [f"**{len(failures)} regression(s):**", ""]
        lines += [f"- {failure}" for failure in failures]
    else:
        count = len(base_hashes) if isinstance(base_hashes, dict) else 0
        lines.append(f"Regression gate clean ({count} baseline cases).")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("fresh", help="freshly generated report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed fractional wall-time growth "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.5,
                        help="skip the time check for baseline runs "
                             "faster than this (default 0.5s)")
    parser.add_argument("--no-time-check", action="store_true",
                        help="only enforce the hash gates")
    parser.add_argument("--max-shard-disp-growth", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed fractional average-displacement "
                             "growth of the sharded topology over the "
                             "unsharded baseline (default 0.25 = +25%%)")
    parser.add_argument("--max-trace-overhead", type=float, default=5.0,
                        metavar="PCT",
                        help="allowed sampled-tracing wall overhead in "
                             "percent, when the fresh report carries a "
                             "tracing_overhead section (default 5)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="append the fresh report to the run store in "
                             "DIR and gate wall time on the median of "
                             "stored history (needs PYTHONPATH=src)")
    parser.add_argument("--store-history", type=int, default=10,
                        metavar="N",
                        help="history window per key for the --store "
                             "trend gate (default 10)")
    parser.add_argument("--summary", default=None, metavar="FILE",
                        help="append a markdown summary table to FILE "
                             "(CI passes $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)

    failures = compare_hashes(baseline, fresh)
    failures += check_parallel_section(fresh)
    failures += check_backend_section(fresh)
    failures += check_trace_section(fresh)
    failures += check_overhead_section(
        fresh, args.max_trace_overhead, args.min_seconds
    )
    failures += check_sharded_section(fresh, args.max_shard_disp_growth)
    if not args.no_time_check:
        failures += compare_times(
            baseline, fresh, args.max_regression, args.min_seconds
        )
    if args.store:
        failures += check_store_trends(
            fresh, args.store, 100.0 * args.max_regression,
            args.store_history,
        )

    for warning in one_sided_cases(baseline, fresh):
        print(f"WARNING: {warning}", file=sys.stderr)
    deltas = compare_counters(baseline, fresh)
    if deltas:
        print("counter deltas on common cases:")
        for delta in deltas:
            print(f"  {delta}")
    else:
        print("counter deltas on common cases: none")

    if args.summary:
        with open(args.summary, "a") as handle:
            handle.write(render_summary(baseline, fresh, failures))

    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        base_hashes = baseline.get("hashes")
        count = len(base_hashes) if isinstance(base_hashes, dict) else 0
        print(f"regression gate clean ({count} baseline cases)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
