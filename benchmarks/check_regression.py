"""Bench regression gate: compare a fresh BENCH_mgl.json to a baseline.

CI generates a fresh report with ``bench_perf.py`` and compares it to the
committed ``BENCH_mgl.json``.  Two classes of failure:

* **Hash change** (always fatal): any benchmark case present in both
  reports whose placement hash differs.  The legalizer is deterministic
  across machines and Python versions, so a hash change means the
  algorithm's output changed — which must be a deliberate, reviewed
  baseline update, never an accident.
* **Wall-time regression** (tolerance-gated): a case slower than
  ``baseline * (1 + --max-regression)``.  Times are noisy across
  machines, so only cases whose *baseline* time is at least
  ``--min-seconds`` participate, and the threshold is generous by
  default (25%).  Machines slower than the baseline recorder would
  false-positive here; CI runners are faster than the recording box, so
  in practice this only trips on genuine algorithmic slowdowns.

Usage::

    python benchmarks/check_regression.py BENCH_mgl.json fresh.json
    python benchmarks/check_regression.py baseline.json fresh.json \
        --max-regression 0.25 --min-seconds 0.5

Exit status 0 when clean, 1 on any failure (each printed to stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_report(path: str) -> Dict[str, object]:
    with open(path) as handle:
        data: Dict[str, object] = json.load(handle)
    return data


def compare_hashes(
    baseline: Dict[str, object], fresh: Dict[str, object]
) -> List[str]:
    """Fatal mismatches among cases present in both reports."""
    base_hashes = baseline.get("hashes")
    fresh_hashes = fresh.get("hashes")
    if not isinstance(base_hashes, dict) or not isinstance(fresh_hashes, dict):
        return ["missing 'hashes' section in one of the reports"]
    failures = []
    common = sorted(set(base_hashes) & set(fresh_hashes))
    if not common:
        failures.append("no common benchmark cases between the reports")
    for key in common:
        if base_hashes[key] != fresh_hashes[key]:
            failures.append(
                f"{key}: placement hash changed "
                f"{base_hashes[key]} -> {fresh_hashes[key]}"
            )
    return failures


def compare_times(
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    max_regression: float,
    min_seconds: float,
) -> List[str]:
    """Wall-time regressions beyond tolerance, on comparable cases."""
    def runs_by_key(report: Dict[str, object]) -> Dict[str, float]:
        runs = report.get("runs")
        if not isinstance(runs, list):
            return {}
        return {
            f"{r['name']}@{r['scale']}": float(r["seconds"])
            for r in runs
            if isinstance(r, dict)
        }

    base_runs = runs_by_key(baseline)
    fresh_runs = runs_by_key(fresh)
    failures = []
    for key in sorted(set(base_runs) & set(fresh_runs)):
        base_s = base_runs[key]
        if base_s < min_seconds:
            continue  # Too fast to measure reliably across machines.
        fresh_s = fresh_runs[key]
        if fresh_s > base_s * (1.0 + max_regression):
            failures.append(
                f"{key}: {fresh_s:.3f}s vs baseline {base_s:.3f}s "
                f"(+{100.0 * (fresh_s / base_s - 1.0):.0f}%, "
                f"limit +{100.0 * max_regression:.0f}%)"
            )
    return failures


def check_parallel_section(fresh: Dict[str, object]) -> List[str]:
    """The fresh report's serial-vs-workers hashes must agree."""
    section = fresh.get("parallel")
    if section is None:
        return []  # Section skipped (--no-parallel-section).
    if not isinstance(section, dict):
        return ["malformed 'parallel' section in the fresh report"]
    if not section.get("hashes_match", False):
        return [
            f"{section.get('name')}: parallel placement hash "
            f"{section.get('parallel_hash')} diverged from serial "
            f"{section.get('serial_hash')}"
        ]
    return []


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("fresh", help="freshly generated report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRAC",
                        help="allowed fractional wall-time growth "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.5,
                        help="skip the time check for baseline runs "
                             "faster than this (default 0.5s)")
    parser.add_argument("--no-time-check", action="store_true",
                        help="only enforce the hash gates")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    fresh = load_report(args.fresh)

    failures = compare_hashes(baseline, fresh)
    failures += check_parallel_section(fresh)
    if not args.no_time_check:
        failures += compare_times(
            baseline, fresh, args.max_regression, args.min_seconds
        )

    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if not failures:
        base_hashes = baseline.get("hashes")
        count = len(base_hashes) if isinstance(base_hashes, dict) else 0
        print(f"regression gate clean ({count} baseline cases)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
