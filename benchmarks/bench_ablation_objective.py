"""Ablation — displacement vs HPWL objective in the fixed-order stage.

§1 of the paper criticizes MrDP's wirelength-driven legalization: "an
objective of HPWL instead of displacement in legalization may disturb
some other metrics optimized in GP."  With both objectives implemented
on the same dual-MCF substrate (repro.core.flowopt vs
repro.core.hpwlopt) the trade-off is directly measurable: the HPWL
objective buys wirelength at the price of displacement, and vice versa.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import pytest

from conftest import TableCollector, bench_scale
from repro.benchgen import iccad2017_suite
from repro.checker import check_legal
from repro.core.flowopt import optimize_fixed_row_order
from repro.core.hpwlopt import build_hpwl_problem, optimize_hpwl_fixed_order
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.placement import Placement

CASE = iccad2017_suite(scale=bench_scale(), names=["fft_a_md2"])[0]


@pytest.fixture(scope="module")
def base_placement() -> Tuple[Placement, LegalizerParams]:
    design = CASE.build()
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    placement = MGLegalizer(design, params).run()
    assert check_legal(placement).is_legal
    return placement, params


def _metrics(
    placement: Placement, params: LegalizerParams
) -> Tuple[float, float]:
    problem = build_hpwl_problem(placement, params)
    xs = problem.base.current_x(placement)
    disp = sum(
        w * abs(x - g)
        for w, x, g in zip(problem.base.weights, xs, problem.base.gp_x)
    )
    return disp, problem.hpwl_x(xs)


@pytest.mark.parametrize("objective", ["displacement", "hpwl"])
def test_ablation_objective(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    objective: str,
    base_placement: Tuple[Placement, LegalizerParams],
) -> None:
    base, params = base_placement
    placement = base.copy()

    if objective == "displacement":
        runner = lambda: optimize_fixed_row_order(placement, params)
    else:
        runner = lambda: optimize_hpwl_fixed_order(placement, params)
    benchmark.pedantic(runner, iterations=1, rounds=1)
    assert check_legal(placement).is_legal

    disp, hpwl_x = _metrics(placement, params)
    base_disp, base_hpwl = _metrics(base, params)
    if "ablation_objective.txt" not in table_store:
        table_store["ablation_objective.txt"] = TableCollector(
            "Ablation — stage-3 objective: displacement (paper) vs "
            "HPWL (MrDP-style), fft_a_md2 stand-in",
            ["objective", "total_disp", "hpwl_x", "disp_vs_mgl", "hpwl_vs_mgl"],
        )
    table_store["ablation_objective.txt"].add(
        objective=objective,
        total_disp=disp,
        hpwl_x=hpwl_x,
        disp_vs_mgl=disp - base_disp,
        hpwl_vs_mgl=hpwl_x - base_hpwl,
    )
    if objective == "displacement":
        assert disp <= base_disp  # the paper's objective never regresses it
    else:
        assert hpwl_x <= base_hpwl  # and MrDP's never regresses HPWL
