"""Ablation — the matching threshold ``delta_0`` of Eq. 3 (§3.2).

``phi`` is linear up to ``delta_0`` and quintic beyond.  A tiny
``delta_0`` crushes every displacement (degrading the average); a huge
one makes the matching average-only (the maximum can drift).  The paper
fixes "a certain threshold"; this ablation shows the trade-off and why
the adaptive (90th percentile) default sits in between.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import pytest

from conftest import TableCollector, bench_scale
from repro.benchgen import iccad2017_suite
from repro.checker import check_legal
from repro.core.matching import optimize_max_displacement
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.placement import Placement

CASE = iccad2017_suite(scale=bench_scale(), names=["pci_bridge32_a_md2"])[0]

DELTA0S = [0.5, 2.0, 8.0, 32.0, None]  # None = adaptive default


@pytest.fixture(scope="module")
def base_placement() -> Placement:
    design = CASE.build()
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    placement = MGLegalizer(design, params).run()
    assert check_legal(placement).is_legal
    return placement


@pytest.mark.parametrize(
    "delta0", DELTA0S, ids=lambda d: "adaptive" if d is None else str(d)
)
def test_ablation_phi(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    base_placement: Placement,
    delta0: Optional[float],
) -> None:
    placement = base_placement.copy()
    params = LegalizerParams(matching_delta0=delta0)

    stats = benchmark.pedantic(
        optimize_max_displacement, args=(placement, params),
        iterations=1, rounds=1,
    )
    assert check_legal(placement).is_legal
    if "ablation_phi.txt" not in table_store:
        table_store["ablation_phi.txt"] = TableCollector(
            "Ablation — Eq. 3 threshold delta_0 (pci_bridge32_a_md2 stand-in)",
            ["delta0", "used", "avg_before", "avg_after", "max_before", "max_after"],
        )
    table_store["ablation_phi.txt"].add(
        delta0="adaptive" if delta0 is None else delta0,
        used=stats.delta0,
        avg_before=stats.avg_disp_before,
        avg_after=stats.avg_disp_after,
        max_before=stats.max_disp_before,
        max_after=stats.max_disp_after,
    )
    # With a sane threshold the maximum never regresses; a huge delta_0
    # degenerates phi to linear, where ties may shuffle the max — that
    # failure mode is exactly what this ablation demonstrates.
    if delta0 is None or delta0 <= 8.0:
        assert stats.max_disp_after <= stats.max_disp_before + 1e-9
