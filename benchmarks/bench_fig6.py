"""Figure 6 — the maximum-displacement matching, before vs after.

The figure shows one cell type inside a fence region with long red
displacement vectors before the §3.2 matching and short ones after.  We
rebuild that situation (a dense fence where late MGL insertions land
far from their GPs), run the matching, verify the max displacement
drops, and emit the two SVG panels next to the table output.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict

import pytest

from conftest import OUT_DIR, TableCollector
from repro.checker import check_legal
from repro.core.matching import optimize_max_displacement
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.technology import CellType, Technology
from repro.viz import render_displacement_svg


def figure6_design() -> Design:
    """A crowded fence holding many same-type cells with clustered GPs."""
    tech = Technology(cell_types=[CellType("R", 3, 1), CellType("F", 2, 1)])
    design = Design(tech, num_rows=30, num_sites=120, name="fig6")
    design.add_fence(FenceRegion(1, "f", [Rect(10, 4, 70, 26)]))
    # 240 red cells want the fence's left half; they will spill rightward.
    for index in range(240):
        design.add_cell(
            f"r{index}", tech.type_named("R"),
            10 + (index * 7) % 25, 4 + (index * 5) % 21, fence_id=1,
        )
    # Gray filler cells elsewhere.
    for index in range(160):
        design.add_cell(
            f"g{index}", tech.type_named("F"),
            (index * 11) % 118, (index * 7) % 29, fence_id=0,
        )
    return design


def test_fig6_matching_before_after(
    benchmark: Any, table_store: Dict[str, TableCollector]
) -> None:
    design = figure6_design()
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    placement = MGLegalizer(design, params).run()
    assert check_legal(placement).is_legal

    red = [c for c in range(design.num_cells) if design.fence_of(c) == 1]
    before_max = max(placement.displacement(c) for c in red)
    OUT_DIR.mkdir(exist_ok=True)
    Path(OUT_DIR / "fig6_before.svg").write_text(
        render_displacement_svg(placement, cells=red)
    )

    stats = benchmark.pedantic(
        optimize_max_displacement, args=(placement, params),
        iterations=1, rounds=1,
    )
    assert check_legal(placement).is_legal
    after_max = max(placement.displacement(c) for c in red)
    Path(OUT_DIR / "fig6_after.svg").write_text(
        render_displacement_svg(placement, cells=red)
    )

    # The figure's claim: outliers shrink, average preserved.
    assert after_max <= before_max + 1e-9
    assert stats.avg_disp_after <= stats.avg_disp_before * 1.05 + 0.05

    if "fig6.txt" not in table_store:
        table_store["fig6.txt"] = TableCollector(
            "Fig. 6 — max-displacement matching on a fence group",
            ["group_cells", "max_before", "max_after", "avg_before", "avg_after"],
        )
    table_store["fig6.txt"].add(
        group_cells=len(red),
        max_before=before_max,
        max_after=after_max,
        avg_before=stats.avg_disp_before,
        avg_after=stats.avg_disp_after,
    )
