"""Figure 3 — MLL vs MGL on the insertion toy.

The figure's point: minimizing local-cell displacement from *current*
positions (MLL) picks a different insertion than minimizing from *GP*
positions (MGL), and the MGL choice has strictly lower total displacement
from GP.  We reproduce the mechanism on the equivalent toy used in
tests/test_paper_figures.py and measure the insertion machinery.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import pytest

from conftest import TableCollector
from repro.core.insertion import InsertionContext
from repro.core.occupancy import Occupancy
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


def build_toy() -> Tuple[Design, Placement, Occupancy, int]:
    tech = Technology(cell_types=[CellType("U", 1, 1)])
    design = Design(tech, num_rows=1, num_sites=7, name="fig3")
    design.add_cell("c0", tech.type_named("U"), 1.0, 0.0)
    design.add_cell("c1", tech.type_named("U"), 4.0, 0.0)
    target = design.add_cell("ct", tech.type_named("U"), 3.0, 0.0)
    design.site_width = design.row_height
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    for cell, x in [(0, 0), (1, 3)]:
        placement.move(cell, x, 0)
        occupancy.add(cell)
    return design, placement, occupancy, target


def insert_with(reference: str) -> int:
    design, placement, occupancy, target = build_toy()
    context = InsertionContext(
        design, occupancy, target, design.chip_rect, reference=reference
    )
    best = None
    for bottom_row, gaps in context.enumerate_insertion_points():
        result = context.evaluate(bottom_row, gaps)
        if result is not None and (best is None or result.sort_key() < best.sort_key()):
            best = result
    assert best is not None
    for cell, new_x in best.moves:
        occupancy.update_x(cell, new_x)
    placement.move(target, best.x, best.y)
    return int(sum(abs(placement.x[c] - design.gp_x[c]) for c in range(3)))


@pytest.mark.parametrize("reference", ["current", "gp"])
def test_fig3_insertion(
    benchmark: Any, table_store: Dict[str, TableCollector], reference: str
) -> None:
    total = benchmark(insert_with, reference)
    expected = {"gp": 1, "current": 3}
    assert total == expected[reference]
    if "fig3.txt" not in table_store:
        table_store["fig3.txt"] = TableCollector(
            "Fig. 3 — toy insertion: total displacement from GP",
            ["method", "total_disp"],
        )
    table_store["fig3.txt"].add(
        method="MGL (gp)" if reference == "gp" else "MLL (current)",
        total_disp=total,
    )


def test_fig3_mgl_strictly_better(benchmark: Any) -> None:
    gp_total, current_total = benchmark(
        lambda: (insert_with("gp"), insert_with("current"))
    )
    assert gp_total < current_total
