"""Table 3 — effect of the two post-processing stages.

Paper claim: across the Table 1 benchmarks, the matching stage (§3.2)
plus the fixed-row-fixed-order MCF (§3.3) cut the maximum displacement by
~23% on average while improving the average displacement ~1% — i.e. the
post-processing trims outliers essentially for free.

Columns mirror the paper: avg/max displacement before vs after the two
stages (before = raw MGL output).
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector, bench_scale, select_cases
from repro import LegalizerParams, legalize
from repro.benchgen import iccad2017_suite
from repro.benchgen.suites import _ICCAD2017_ROWS
from repro.checker import check_legal

DEFAULT_SUBSET = [
    "des_perf_b_md1",
    "des_perf_b_md2",
    "fft_2_md2",
    "fft_a_md3",
    "pci_bridge32_a_md2",
    "pci_bridge32_b_md3",
]

CASES = {
    case.name: case
    for case in iccad2017_suite(scale=bench_scale(), names=None)
}
SELECTED = select_cases(list(_ICCAD2017_ROWS), DEFAULT_SUBSET)


def _collector(table_store: Dict[str, TableCollector]) -> TableCollector:
    if "table3.txt" not in table_store:
        table_store["table3.txt"] = TableCollector(
            "Table 3 — post-processing effect (displacement in row heights)",
            [
                "benchmark", "avg_before", "avg_after",
                "max_before", "max_after", "max_reduction",
            ],
        )
    return table_store["table3.txt"]


@pytest.mark.parametrize("name", SELECTED)
def test_table3(
    benchmark: Any, table_store: Dict[str, TableCollector], name: str
) -> None:
    design = CASES[name].build()

    result = benchmark.pedantic(
        legalize,
        args=(design, LegalizerParams(scheduler_capacity=1)),
        iterations=1, rounds=1,
    )
    assert check_legal(result.placement).is_legal

    before = result.after_mgl
    after = result.after_flow or result.after_matching or before
    reduction = (
        (before.max_disp - after.max_disp) / before.max_disp
        if before.max_disp > 0 else 0.0
    )
    benchmark.extra_info.update(
        avg_before=before.avg_disp, avg_after=after.avg_disp,
        max_before=before.max_disp, max_after=after.max_disp,
    )
    # The paper's direction: max displacement must not regress.
    assert after.max_disp <= before.max_disp + 1e-9
    _collector(table_store).add(
        benchmark=name,
        avg_before=before.avg_disp,
        avg_after=after.avg_disp,
        max_before=before.max_disp,
        max_after=after.max_disp,
        max_reduction=reduction,
    )
