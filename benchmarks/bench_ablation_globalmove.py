"""Ablation — the global-move extension stage after the paper's flow.

The paper's stages cannot move a cell to a different row once MGL placed
it (matching only permutes same-type positions; stage 3 freezes rows).
The optional rip-up-and-reinsert stage (repro.core.globalmove) closes
that gap; this bench measures what it buys on top of the full flow.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector, bench_scale
from repro import LegalizerParams, legalize
from repro.benchgen import iccad2017_suite
from repro.benchgen.suites import BenchmarkCase
from repro.checker import check_legal

CASES = [
    iccad2017_suite(scale=bench_scale(), names=[name])[0]
    for name in ("des_perf_b_md2", "fft_2_md2")
]


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("extension", [False, True], ids=["paper", "paper+gm"])
def test_ablation_globalmove(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    case: BenchmarkCase,
    extension: bool,
) -> None:
    design = case.build()
    params = LegalizerParams(
        scheduler_capacity=1, use_global_moves=extension
    )
    result = benchmark.pedantic(
        legalize, args=(design, params), iterations=1, rounds=1
    )
    assert check_legal(result.placement).is_legal

    final = (
        result.after_global_moves or result.after_flow
        or result.after_matching or result.after_mgl
    )
    if "ablation_globalmove.txt" not in table_store:
        table_store["ablation_globalmove.txt"] = TableCollector(
            "Ablation — global-move extension on top of the full flow",
            ["benchmark", "flow", "avg_disp", "max_disp", "accepted"],
        )
    table_store["ablation_globalmove.txt"].add(
        benchmark=case.name,
        flow="paper+gm" if extension else "paper",
        avg_disp=final.avg_disp,
        max_disp=final.max_disp,
        accepted=(
            result.global_move_stats.accepted
            if result.global_move_stats else 0
        ),
    )
    if extension and result.after_flow is not None:
        assert final.avg_disp <= result.after_flow.avg_disp + 1e-9
