"""Table 1 — full flow vs the contest-champion stand-in.

Paper claim: versus the ICCAD-2017 champion, the proposed flow achieves
~18% lower average displacement, ~12% lower maximum displacement, zero
edge-spacing violations (champion: thousands), far fewer pin violations,
and ~26% better contest score ``S`` (Eq. 10).

Our stand-in for the champion binary is the fence-aware but
routability-blind greedy legalizer (see DESIGN.md, "Substitutions").
Columns mirror the paper's Table 1.
"""

from __future__ import annotations

from typing import Any, Dict

import pytest

from conftest import TableCollector, bench_scale, select_cases
from repro import LegalizerParams, legalize
from repro.baselines import legalize_tetris
from repro.benchgen import iccad2017_suite
from repro.benchgen.suites import _ICCAD2017_ROWS
from repro.checker import check_legal, contest_score
from repro.model.design import Design
from repro.model.placement import Placement

DEFAULT_SUBSET = [
    "des_perf_1",
    "des_perf_b_md2",
    "edit_dist_a_md3",
    "fft_2_md2",
    "fft_a_md3",
    "pci_bridge32_b_md2",
]

CASES = {
    case.name: case
    for case in iccad2017_suite(scale=bench_scale(), names=None)
}
SELECTED = select_cases(list(_ICCAD2017_ROWS), DEFAULT_SUBSET)


def _collector(table_store: Dict[str, TableCollector]) -> TableCollector:
    if "table1.txt" not in table_store:
        table_store["table1.txt"] = TableCollector(
            "Table 1 — ours vs contest-champion stand-in "
            "(avg/max disp in rows; S per Eq. 10)",
            [
                "benchmark", "cells", "density", "algo",
                "avg_disp", "max_disp", "pin_viol", "edge_viol",
                "hpwl_ratio", "score", "runtime_s",
            ],
        )
    return table_store["table1.txt"]


def _run_ours(design: Design) -> Placement:
    result = legalize(design, LegalizerParams(scheduler_capacity=1))
    return result.placement


def _run_champion(design: Design) -> Placement:
    return legalize_tetris(design)


@pytest.mark.parametrize("name", SELECTED)
@pytest.mark.parametrize("algo", ["champion", "ours"])
def test_table1(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    name: str,
    algo: str,
) -> None:
    design = CASES[name].build()
    runner = _run_ours if algo == "ours" else _run_champion

    placement = benchmark.pedantic(
        runner, args=(design,), iterations=1, rounds=1
    )
    assert check_legal(placement).is_legal

    score = contest_score(placement)
    benchmark.extra_info.update(score.row())
    runtime = benchmark.stats.stats.mean if benchmark.stats else None
    _collector(table_store).add(
        benchmark=name,
        cells=design.num_cells,
        density=design.density(),
        algo=algo,
        avg_disp=score.avg_displacement,
        max_disp=score.max_displacement,
        pin_viol=score.pin_violations,
        edge_viol=score.edge_violations,
        hpwl_ratio=score.hpwl_ratio,
        score=score.score,
        runtime_s=runtime,
    )
