"""Table 2 — total displacement vs prior legalizers.

Paper claim (normalized total displacement, ours = 1.00): MLL-Imp [12]
1.20, multi-row Abacus [7] 1.17, LCP [9] 1.09.  Runtime also favored the
proposed flow (1.00 vs 1.13 / 2.32 / 1.20).

Per the paper's protocol, "ours" here optimizes *total displacement*
(uniform weights) and ignores fences and routability; benchmarks are the
10%-double-height ISPD-2015 derivatives.  The expected *shape* at our
scale: ours best or tied, ordered methods (abacus) worst on dense rows,
MLL between (its accumulation penalty grows with density/clustering; see
EXPERIMENTS.md for the measured deltas).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import pytest

from conftest import TableCollector, bench_scale, select_cases
from repro.baselines import (
    legalize_abacus,
    legalize_lcp,
    legalize_mll,
    legalize_tetris,
)
from repro.benchgen import ispd2015_suite
from repro.benchgen.suites import _ISPD2015_ROWS
from repro.checker import check_legal
from repro.core.flowopt import optimize_fixed_row_order
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement

DEFAULT_SUBSET = [
    "des_perf_a",
    "fft_1",
    "fft_2",
    "matrix_mult_b",
    "pci_bridge32_a",
    "superblue19",
]

CASES = {
    case.name: case
    for case in ispd2015_suite(scale=bench_scale(), names=None)
}
SELECTED = select_cases(list(_ISPD2015_ROWS), DEFAULT_SUBSET)


def _params() -> LegalizerParams:
    return LegalizerParams(
        routability=False, use_matching=False, scheduler_capacity=1
    )


def _run_ours(design: Design) -> Placement:
    params = _params()
    placement = MGLegalizer(design, params).run()
    optimize_fixed_row_order(placement, params)
    return placement


def _run_mll_imp(design: Design) -> Placement:
    """"[12]-Imp": MLL plus the fixed-order refinement, the improved
    variant the paper actually compares against (reported via [9])."""
    placement = legalize_mll(design)
    optimize_fixed_row_order(placement, _params())
    return placement


ALGOS: Dict[str, Callable[[Design], Placement]] = {
    "mll": lambda design: legalize_mll(design),
    "mll_imp": _run_mll_imp,
    "abacus": lambda design: legalize_abacus(design),
    "lcp": lambda design: legalize_lcp(design),
    "tetris": lambda design: legalize_tetris(design),
    "ours": _run_ours,
}


def _collector(table_store: Dict[str, TableCollector]) -> TableCollector:
    if "table2.txt" not in table_store:
        table_store["table2.txt"] = TableCollector(
            "Table 2 — total displacement (sites) vs prior legalizers",
            ["benchmark", "cells", "density", "algo", "total_disp", "runtime_s"],
        )
    return table_store["table2.txt"]


@pytest.mark.parametrize("name", SELECTED)
@pytest.mark.parametrize("algo", list(ALGOS))
def test_table2(
    benchmark: Any,
    table_store: Dict[str, TableCollector],
    name: str,
    algo: str,
) -> None:
    design = CASES[name].build()
    placement = benchmark.pedantic(
        ALGOS[algo], args=(design,), iterations=1, rounds=1
    )
    assert check_legal(placement).is_legal
    total = placement.total_displacement_sites()
    benchmark.extra_info["total_disp_sites"] = total
    runtime = benchmark.stats.stats.mean if benchmark.stats else None
    _collector(table_store).add(
        benchmark=name,
        cells=design.num_cells,
        density=design.density(),
        algo=algo,
        total_disp=total,
        runtime_s=runtime,
    )
