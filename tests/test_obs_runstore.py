"""The persistent run store: appends, history, and trend gating.

The acceptance-critical property lives in ``TestTrend``: an injected
wall-time regression in a fixture store is flagged by ``trend()`` (and
therefore by ``repro runs trend`` / ``check_regression.py --store``),
while a placement-hash flip is fatal regardless of timing noise.
"""

import json

import pytest

from repro.obs.runstore import (
    RunStore,
    bench_records,
    render_run_detail,
    render_runs_list,
    render_trends,
    run_key_for_manifest,
)


def manifest_for(
    name="unit", cells=100, params=None, placement_hash="aaaa1111bbbb2222"
):
    return {
        "design": {"name": name, "cells": cells},
        "params": dict(params or {"capacity": 8}),
        "placement_hash": placement_hash,
    }


def metrics_for(evaluated=1000, expansions=40):
    return {
        "counters": {
            "mgl.insertions_evaluated": evaluated,
            "mgl.window_expansions": expansions,
            "mgl.cells_placed": 100,
        }
    }


def seed_history(store, count, seconds=1.0, **manifest_kwargs):
    for _ in range(count):
        store.add_run(
            manifest_for(**manifest_kwargs),
            metrics=metrics_for(),
            seconds=seconds,
        )


class TestRunKey:
    def test_key_binds_design_shape_and_params(self):
        base = run_key_for_manifest(manifest_for())
        assert base.startswith("unit@100/")
        assert len(base.split("/")[1]) == 8
        # Same design, different knobs: different key, never trended
        # against each other.
        other = run_key_for_manifest(manifest_for(params={"capacity": 1}))
        assert other.startswith("unit@100/")
        assert other != base

    def test_key_is_stable_across_param_ordering(self):
        a = run_key_for_manifest(
            {"design": {"name": "d", "cells": 5}, "params": {"a": 1, "b": 2}}
        )
        b = run_key_for_manifest(
            {"design": {"name": "d", "cells": 5}, "params": {"b": 2, "a": 1}}
        )
        assert a == b

    def test_malformed_manifest_degrades_to_unknown(self):
        assert run_key_for_manifest({}).startswith("unknown@0/")


class TestAppends:
    def test_add_run_writes_artifacts_and_sequential_ids(self, tmp_path):
        store = RunStore(tmp_path / "store")
        first = store.add_run(
            manifest_for(),
            metrics=metrics_for(),
            span_profile={"span_count": 3},
            collapsed="legalize;mgl 120\n",
            seconds=1.5,
        )
        second = store.add_run(manifest_for(), seconds=1.6)
        assert [first, second] == ["000001", "000002"]
        run_dir = store.run_dir(first)
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "metrics.json").exists()
        assert (run_dir / "span_profile.json").exists()
        assert (run_dir / "profile.collapsed").read_text() == (
            "legalize;mgl 120\n"
        )
        # Optional artifacts are genuinely optional.
        assert not (store.run_dir(second) / "metrics.json").exists()

    def test_record_extracts_trend_counters(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.add_run(
            manifest_for(), metrics=metrics_for(evaluated=777), seconds=1.0
        )
        (record,) = store.records()
        assert record["counters"] == {
            "insertions_evaluated": 777,
            "window_expansions": 40,
        }
        assert record["source"] == "run"
        assert record["placement_hash"] == "aaaa1111bbbb2222"

    def test_index_has_no_leftover_tmp_file(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.add_run(manifest_for(), seconds=0.5)
        names = {p.name for p in store.root.iterdir()}
        assert "index.json" in names
        assert not any(name.endswith(".tmp") for name in names)
        payload = json.loads(store.index_path.read_text())
        assert payload["version"] == 1
        assert len(payload["runs"]) == 1

    def test_empty_store_queries(self, tmp_path):
        store = RunStore(tmp_path / "missing")
        assert store.records() == []
        assert store.keys() == []
        assert store.trends() == []
        assert "empty" in render_runs_list(store)


class TestBenchIngestion:
    REPORT = {
        "runs": [
            {
                "name": "des", "scale": 0.004, "cells": 451,
                "seconds": 0.8, "placement_hash": "cafe",
                "insertions_evaluated": 9000, "window_expansions": 120,
            }
        ],
        "sharded": {
            "name": "des", "scale": 0.2, "cells": 22000, "shards": 4,
            "halo_rows": 2, "sharded_seconds": 30.0,
            "sharded_hash": "beef",
        },
        "tracing_overhead": {
            "name": "des", "scale": 0.05, "cells": 5600,
            "sample_every": 16, "sampled_seconds": 5.0,
            "sampled_hash": "f00d",
        },
    }

    def test_keys_match_the_bench_hash_naming_scheme(self):
        keys = [r["key"] for r in bench_records(self.REPORT)]
        assert keys == [
            "des@0.004", "des@0.2#shards4h2", "des@0.05#sampled16",
        ]

    def test_add_bench_report_appends_every_section(self, tmp_path):
        store = RunStore(tmp_path / "store")
        added = store.add_bench_report(self.REPORT, label="ci")
        assert added == ["000001", "000002", "000003"]
        by_key = {r["key"]: r for r in store.records()}
        assert by_key["des@0.004"]["counters"] == {
            "insertions_evaluated": 9000, "window_expansions": 120,
        }
        assert by_key["des@0.2#shards4h2"]["placement_hash"] == "beef"
        assert by_key["des@0.05#sampled16"]["seconds"] == 5.0
        assert all(r["label"] == "ci" for r in store.records())

    def test_ids_interleave_with_cli_runs(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.add_run(manifest_for(), seconds=1.0)
        added = store.add_bench_report({"runs": self.REPORT["runs"]})
        assert added == ["000002"]


class TestTrend:
    def test_injected_wall_time_regression_is_flagged(self, tmp_path):
        """The ISSUE acceptance gate: a slow run against steady history."""
        store = RunStore(tmp_path / "store")
        for seconds in (1.0, 1.02, 0.98, 1.01):
            store.add_run(
                manifest_for(), metrics=metrics_for(), seconds=seconds
            )
        store.add_run(manifest_for(), metrics=metrics_for(), seconds=1.5)
        (trend,) = store.trends()
        assert trend.flagged
        assert not trend.hash_changed
        assert trend.drift_pct == pytest.approx(48.5, abs=1.0)
        assert "wall time 1.500s" in trend.reason
        assert "vs median" in trend.reason

    def test_steady_history_is_clean(self, tmp_path):
        store = RunStore(tmp_path / "store")
        seed_history(store, 5, seconds=1.0)
        trend = store.trend(store.keys()[0])
        assert not trend.flagged
        assert trend.drift_pct == pytest.approx(0.0)
        assert trend.baseline_median == pytest.approx(1.0)

    def test_hash_change_is_fatal_even_when_fast(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.add_run(manifest_for(placement_hash="aaaa"), seconds=1.0)
        store.add_run(manifest_for(placement_hash="bbbb"), seconds=0.5)
        trend = store.trend(store.keys()[0])
        assert trend.flagged and trend.hash_changed
        assert trend.reason == "placement hash changed: aaaa -> bbbb"

    def test_counter_drift_is_flagged(self, tmp_path):
        store = RunStore(tmp_path / "store")
        for _ in range(3):
            store.add_run(
                manifest_for(), metrics=metrics_for(evaluated=1000),
                seconds=1.0,
            )
        store.add_run(
            manifest_for(), metrics=metrics_for(evaluated=2000), seconds=1.0
        )
        trend = store.trend(store.keys()[0])
        assert trend.flagged
        assert trend.counter_drift["insertions_evaluated"] == pytest.approx(
            100.0
        )
        assert "insertions_evaluated" in trend.reason

    def test_two_runs_cannot_call_a_wall_time_trend(self, tmp_path):
        # One prior second value is noise, not a baseline.
        store = RunStore(tmp_path / "store")
        store.add_run(manifest_for(), seconds=1.0)
        store.add_run(manifest_for(), seconds=9.0)
        trend = store.trend(store.keys()[0])
        assert trend.drift_pct is None
        assert not trend.flagged

    def test_tiny_baselines_never_gate(self, tmp_path):
        # Sub-min_seconds medians measure timer noise; stay silent.
        store = RunStore(tmp_path / "store")
        seed_history(store, 3, seconds=0.003)
        store.add_run(manifest_for(), seconds=0.03)
        trend = store.trend(store.keys()[0])
        assert trend.drift_pct is None
        assert not trend.flagged

    def test_history_window_limits_the_baseline(self, tmp_path):
        store = RunStore(tmp_path / "store")
        seed_history(store, 4, seconds=10.0)  # ancient slow epoch
        seed_history(store, 6, seconds=1.0)
        trend = store.trend(store.keys()[0], last=5)
        assert trend.baseline_median == pytest.approx(1.0)
        assert not trend.flagged

    def test_keys_trend_independently(self, tmp_path):
        store = RunStore(tmp_path / "store")
        seed_history(store, 4, seconds=1.0, name="steady")
        seed_history(store, 3, seconds=1.0, name="jumpy")
        store.add_run(manifest_for(name="jumpy"), seconds=5.0)
        flagged = {t.key: t.flagged for t in store.trends()}
        assert [flag for key, flag in flagged.items()
                if key.startswith("steady")] == [False]
        assert [flag for key, flag in flagged.items()
                if key.startswith("jumpy")] == [True]


class TestRendering:
    def test_list_show_and_trend_views(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_id = store.add_run(
            manifest_for(),
            metrics=metrics_for(),
            span_profile={
                "span_count": 2,
                "total_seconds": 1.0,
                "kinds": {
                    "mgl": {
                        "count": 1, "total_seconds": 1.0, "self_seconds": 0.9,
                    }
                },
            },
            seconds=1.25,
        )
        listing = render_runs_list(store)
        assert "1 runs, 1 keys" in listing
        assert "unit@100/" in listing

        detail = render_run_detail(store, run_id)
        assert f"run {run_id} (run):" in detail
        assert "counters.insertions_evaluated: 1000" in detail
        assert "span profile: 2 spans" in detail
        assert "manifest.json" in detail

        assert "not found" in render_run_detail(store, "999999")

    def test_trend_table_marks_drift_with_reason(self, tmp_path):
        store = RunStore(tmp_path / "store")
        seed_history(store, 3, seconds=1.0)
        store.add_run(manifest_for(), seconds=2.0)
        table = render_trends(store.trends())
        assert "DRIFT" in table
        assert "wall time 2.000s" in table
        assert render_trends([]) == "no keys in store"
