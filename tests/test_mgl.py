"""Tests for the MGL legalizer (paper §3.1, Algorithm 1)."""

import pytest

from repro.checker import check_legal
from repro.core.mgl import (
    LegalizationError,
    MGLegalizer,
    height_weights,
    mgl_cell_order,
)
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


def no_routability(**kwargs) -> LegalizerParams:
    return LegalizerParams(routability=False, scheduler_capacity=1, **kwargs)


class TestRun:
    def test_small_design_legal(self, small_design):
        placement = MGLegalizer(small_design, no_routability()).run()
        assert check_legal(placement).is_legal

    def test_fence_design_legal(self, fence_design):
        placement = MGLegalizer(fence_design, no_routability()).run()
        assert check_legal(placement).is_legal

    def test_deterministic(self, small_design):
        a = MGLegalizer(small_design, no_routability()).run()
        b = MGLegalizer(small_design, no_routability()).run()
        assert a.x == b.x and a.y == b.y

    def test_fixed_cells_untouched(self, basic_tech):
        design = Design(basic_tech, num_rows=10, num_sites=50, name="fx")
        design.add_cell("f", basic_tech.type_named("S4"), 10, 3, fixed=True)
        design.add_cell("m", basic_tech.type_named("S4"), 11.2, 3.4)
        placement = MGLegalizer(design, no_routability()).run()
        assert placement.position(0) == (10, 3)
        assert check_legal(placement).is_legal
        # The movable cell must not overlap the fixed one.
        assert placement.position(1) != (10, 3)

    def test_stats_populated(self, small_design):
        legalizer = MGLegalizer(small_design, no_routability())
        legalizer.run()
        assert legalizer.stats["cells_placed"] == small_design.num_cells
        assert legalizer.stats["insertions_evaluated"] > 0

    def test_overfull_fence_raises(self, basic_tech):
        from repro.model.fence import FenceRegion
        from repro.model.geometry import Rect

        design = Design(basic_tech, num_rows=10, num_sites=50, name="full")
        design.add_fence(FenceRegion(1, "tiny", [Rect(0, 0, 4, 1)]))
        for index in range(3):  # 3 x 2-wide cells into 4 sites
            design.add_cell(
                f"c{index}", basic_tech.type_named("S2"), 1, 0, fence_id=1
            )
        with pytest.raises(LegalizationError):
            MGLegalizer(design, no_routability()).run()


class TestWindow:
    def test_window_centered_on_gp(self, small_design):
        legalizer = MGLegalizer(small_design, no_routability())
        window = legalizer.initial_window(0)
        gp_x = small_design.gp_x[0]
        assert window.xlo <= gp_x <= window.xhi

    def test_window_clipped_to_chip(self, small_design):
        legalizer = MGLegalizer(small_design, no_routability())
        window = legalizer.initial_window(0, scale=100.0)
        assert small_design.chip_rect.contains_rect(window)

    def test_window_clamped_into_fence(self, basic_tech):
        from repro.model.fence import FenceRegion
        from repro.model.geometry import Rect

        design = Design(basic_tech, num_rows=20, num_sites=100, name="farfence")
        design.add_fence(FenceRegion(1, "f", [Rect(80, 14, 100, 20)]))
        # GP is far from the fence; the window must still reach it.
        design.add_cell("c", basic_tech.type_named("S2"), 2.0, 1.0, fence_id=1)
        legalizer = MGLegalizer(design, no_routability())
        window = legalizer.initial_window(0)
        assert window.overlaps(Rect(80, 14, 100, 20))
        placement = legalizer.run()
        assert check_legal(placement).is_legal

    def test_window_grows_on_failure(self, basic_tech):
        design = Design(basic_tech, num_rows=1, num_sites=36, name="grow")
        # Fill the left side; free space only at [28, 36).
        for index in range(7):
            design.add_cell("b%d" % index, basic_tech.type_named("S4"),
                            index * 4, 0, fixed=True)
        design.add_cell("t", basic_tech.type_named("S4"), 2.0, 0.0)
        legalizer = MGLegalizer(
            design, no_routability(window_width=4, window_height=1)
        )
        placement = legalizer.run()
        assert check_legal(placement).is_legal
        assert placement.x[7] >= 28
        assert legalizer.stats["window_expansions"] > 0


class TestOrdering:
    def test_height_first_order(self, small_design):
        order = mgl_cell_order(small_design, no_routability())
        heights = [small_design.cell_type_of(c).height for c in order]
        assert heights == sorted(heights, reverse=True)

    def test_gp_x_order(self, small_design):
        order = mgl_cell_order(
            small_design, no_routability(seed_order="gp_x")
        )
        xs = [small_design.gp_x[c] for c in order]
        assert xs == sorted(xs)

    def test_input_order(self, small_design):
        order = mgl_cell_order(
            small_design, no_routability(seed_order="input")
        )
        assert order == small_design.movable_cells()


class TestHeightWeights:
    def test_inverse_group_size(self, small_design):
        weight = height_weights(small_design)
        groups = small_design.cells_by_height()
        for height, cells in groups.items():
            assert weight(cells[0]) == pytest.approx(1.0 / len(cells))

    def test_height_weighted_run_legal(self, small_design):
        placement = MGLegalizer(
            small_design, no_routability(height_weighted=True)
        ).run()
        assert check_legal(placement).is_legal


class TestMaxDisplacementBehaviour:
    def test_displacement_reasonable(self, small_design):
        """At 55% density cells should land near their GP positions."""
        placement = MGLegalizer(small_design, no_routability()).run()
        disps = placement.displacements()
        assert disps.mean() < 2.0
        assert disps.max() < 12.0
