"""Tests for repro.obs.manifest: digests, round-trip, and diffing."""

import hashlib

import repro
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    design_digest,
    diff_manifests,
    load_manifest,
    manifest_path_for,
    placement_digest,
    write_manifest,
)


class TestDigests:
    def test_design_digest_stable_and_content_sensitive(
        self, small_design, fence_design
    ):
        assert design_digest(small_design) == design_digest(small_design)
        assert len(design_digest(small_design)) == 16
        assert design_digest(small_design) != design_digest(fence_design)

    def test_placement_digest_matches_bench_convention(self, small_design):
        placement = MGLegalizer(
            small_design, LegalizerParams(routability=False)
        ).run()
        expected = hashlib.sha256(
            repr(list(zip(placement.x, placement.y))).encode()
        ).hexdigest()[:16]
        assert placement_digest(placement) == expected


class TestBuildAndRoundTrip:
    def test_fields(self, small_design):
        params = LegalizerParams(routability=False, scheduler_workers=2)
        placement = MGLegalizer(
            small_design, LegalizerParams(routability=False)
        ).run()
        manifest = build_manifest(
            small_design, params, placement, seed=11,
            trace_structure_hash="ab" * 32,
        )
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["design"]["name"] == "small"
        assert manifest["design"]["cells"] == small_design.num_cells
        assert manifest["design"]["digest"] == design_digest(small_design)
        assert manifest["workers"] == 2
        assert manifest["seed"] == 11
        assert manifest["placement_hash"] == placement_digest(placement)
        assert manifest["trace_structure_hash"] == "ab" * 32
        assert manifest["package_version"] == repro.__version__
        assert manifest["params"]["scheduler_workers"] == 2

    def test_optional_fields_default_to_none(self, small_design):
        manifest = build_manifest(small_design, LegalizerParams())
        assert manifest["placement_hash"] is None
        assert manifest["seed"] is None
        assert manifest["trace_structure_hash"] is None

    def test_write_load_round_trip(self, small_design, tmp_path):
        manifest = build_manifest(small_design, LegalizerParams(), seed=3)
        path = tmp_path / "manifest.json"
        write_manifest(manifest, path)
        assert load_manifest(path) == manifest

    def test_manifest_path_convention(self):
        assert str(manifest_path_for("out/profile.json")).endswith(
            "out/profile.manifest.json"
        )
        assert manifest_path_for("run.trace.json").name == (
            "run.trace.manifest.json"
        )
        assert manifest_path_for("noext").name == "noext.manifest.json"


class TestDiff:
    def test_equal_manifests_diff_empty(self, small_design):
        a = build_manifest(small_design, LegalizerParams(), seed=1)
        b = build_manifest(small_design, LegalizerParams(), seed=1)
        assert diff_manifests(a, b) == []

    def test_config_mismatch_named_precisely(self, small_design):
        a = build_manifest(
            small_design, LegalizerParams(scheduler_workers=0)
        )
        b = build_manifest(
            small_design, LegalizerParams(scheduler_workers=2)
        )
        lines = diff_manifests(a, b)
        assert any(
            line.startswith("params.scheduler_workers: ") for line in lines
        )
        assert any(line.startswith("workers: 0 != 2") for line in lines)
        # Capacity etc. agree, so nothing else is reported.
        assert all("capacity" not in line for line in lines)

    def test_environment_reported_last_and_flagged(self, small_design):
        a = build_manifest(small_design, LegalizerParams())
        b = dict(a)
        b["python_version"] = "0.0.0"
        b["seed"] = 9
        lines = diff_manifests(a, b)
        assert lines[-1].endswith("(environment)")
        assert "python_version" in lines[-1]
        assert lines[0].startswith("seed:")

    def test_one_sided_keys_reported(self, small_design):
        a = build_manifest(small_design, LegalizerParams())
        b = {key: value for key, value in a.items() if key != "seed"}
        b["extra"] = True
        lines = diff_manifests(a, b)
        assert any("seed: None != <absent>" in line for line in lines)
        assert any("extra: <absent> != True" in line for line in lines)
