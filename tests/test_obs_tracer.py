"""Tests for repro.obs.tracer: spans, hashing, exports, null tracer."""

import json

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    structure_hash,
)


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False
        # Every span() call hands back the same shared context object.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", x=1)

    def test_span_is_a_mutation_free_noop(self):
        with NULL_TRACER.span("work", depth=3) as span:
            span.set(cost=1.5, cell=7)
        assert span.attrs == {}
        assert span.children == []
        # Reuse leaks nothing between contexts.
        with NULL_TRACER.span("again") as again:
            assert again is span
            assert again.attrs == {}

    def test_attach_payloads_is_a_noop(self):
        payload = {"name": "evaluate", "attrs": {}, "children": []}
        assert NULL_TRACER.attach_payloads([payload], worker=1) is None

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("boom"):
                raise RuntimeError("boom")


class TestSpanTracerRecording:
    def test_nesting_builds_the_tree(self):
        tracer = SpanTracer()
        with tracer.span("legalize") as root:
            root.set(design="d")
            with tracer.span("mgl"):
                with tracer.span("window", cell=3):
                    pass
                with tracer.span("window", cell=4):
                    pass
            with tracer.span("matching"):
                pass
        assert len(tracer.roots) == 1
        legalize = tracer.roots[0]
        assert legalize.name == "legalize"
        assert legalize.attrs == {"design": "d"}
        assert [c.name for c in legalize.children] == ["mgl", "matching"]
        mgl = legalize.children[0]
        assert [c.attrs["cell"] for c in mgl.children] == [3, 4]
        assert tracer.span_count() == 5

    def test_timestamps_recorded_and_ordered(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.t_start <= inner.t_start
        assert inner.t_end <= outer.t_end
        assert outer.duration >= inner.duration >= 0.0

    def test_exception_still_closes_the_span(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("x")
        assert tracer.roots[0].t_end is not None
        # The stack unwound: the next span is a fresh root.
        with tracer.span("next"):
            pass
        assert [s.name for s in tracer.roots] == ["broken", "next"]


class TestStructureHash:
    def build(self, attr_value, pause=False):
        tracer = SpanTracer()
        with tracer.span("root", key=attr_value):
            if pause:  # Burn some clock so timestamps differ.
                sum(range(10_000))
            with tracer.span("child"):
                pass
        return tracer

    def test_timestamp_independent(self):
        fast = self.build(1)
        slow = self.build(1, pause=True)
        assert fast.structure_hash() == slow.structure_hash()

    def test_sensitive_to_attrs_and_names(self):
        base = self.build(1)
        assert base.structure_hash() != self.build(2).structure_hash()
        other = SpanTracer()
        with other.span("root", key=1):
            with other.span("renamed"):
                pass
        assert base.structure_hash() != other.structure_hash()

    def test_meta_is_not_structural(self):
        payload = {
            "name": "evaluate",
            "attrs": {"evaluated": 5, "found": True},
            "children": [],
            "duration": 0.25,
        }
        hashes = []
        for worker in (0, 3):
            tracer = SpanTracer()
            with tracer.span("batch"):
                tracer.attach_payloads([dict(payload)], worker=worker)
            hashes.append(tracer.structure_hash())
        assert hashes[0] == hashes[1]

    def test_attach_order_is_structural(self):
        def build(order):
            tracer = SpanTracer()
            payloads = [
                {"name": "evaluate", "attrs": {"cell": i}, "children": []}
                for i in order
            ]
            with tracer.span("batch"):
                tracer.attach_payloads(payloads)
            return tracer.structure_hash()

        assert build([1, 2]) != build([2, 1])

    def test_nan_attrs_rejected(self):
        span = Span("bad", {"x": float("nan")})
        with pytest.raises(ValueError):
            structure_hash([span])


class TestPayloads:
    def test_round_trip_preserves_structure(self):
        root = Span("window", {"cell": 9, "disp": 1.5})
        child = Span("evaluate", {"evaluated": 4, "found": True})
        root.children.append(child)
        rebuilt = Span.from_payload(root.to_payload())
        assert rebuilt.structure() == root.structure()
        assert structure_hash([rebuilt]) == structure_hash([root])

    def test_round_trip_carries_meta(self):
        span = Span("evaluate")
        span.meta["worker"] = 2
        rebuilt = Span.from_payload(span.to_payload())
        assert rebuilt.meta == {"worker": 2}

    def test_from_payload_requires_a_name(self):
        with pytest.raises(ValueError):
            Span.from_payload({"attrs": {}, "children": []})

    def test_attach_synthesizes_times_from_duration(self):
        tracer = SpanTracer()
        with tracer.span("batch"):
            tracer.attach_payloads(
                [{"name": "evaluate", "attrs": {}, "children": [],
                  "duration": 0.5, "worker": 1}]
            )
        merged = tracer.roots[0].children[0]
        assert merged.meta == {"worker": 1}
        assert merged.duration == pytest.approx(0.5)

    def test_attach_without_open_span_appends_roots(self):
        tracer = SpanTracer()
        tracer.attach_payloads(
            [{"name": "orphan", "attrs": {}, "children": []}]
        )
        assert [s.name for s in tracer.roots] == ["orphan"]


class TestExports:
    def build(self):
        tracer = SpanTracer()
        with tracer.span("legalize", design="d"):
            with tracer.span("mgl"):
                tracer.attach_payloads(
                    [{"name": "evaluate", "attrs": {"evaluated": 2},
                      "children": [], "duration": 0.01, "worker": 0}]
                )
        return tracer

    def test_chrome_trace_schema(self, tmp_path):
        tracer = self.build()
        doc = tracer.to_chrome_trace()
        events = doc["traceEvents"]
        assert len(events) == tracer.span_count()
        for event in events:
            assert set(event) == {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args"
            }
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # Worker-merged spans land on their own track.
        tids = {event["name"]: event["tid"] for event in events}
        assert tids["legalize"] == 0
        assert tids["evaluate"] == 1
        # And the file written is valid JSON.
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_jsonl_one_record_per_span(self, tmp_path):
        tracer = self.build()
        lines = tracer.to_jsonl().strip().splitlines()
        assert len(lines) == tracer.span_count()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["legalize", "mgl", "evaluate"]
        assert [r["depth"] for r in records] == [0, 1, 2]
        assert records[2]["meta"] == {"worker": 0}
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        assert path.read_text() == tracer.to_jsonl()

    def test_empty_tracer_exports(self):
        tracer = SpanTracer()
        assert tracer.to_jsonl() == ""
        assert tracer.to_chrome_trace() == {
            "traceEvents": [], "displayTimeUnit": "ms"
        }
        assert tracer.span_count() == 0
