"""Round-trip and parsing tests for the Bookshelf format."""

import pytest

from repro.benchgen import SyntheticSpec, generate_design
from repro.io.bookshelf import load_bookshelf, save_bookshelf
from repro.model.placement import Placement


@pytest.fixture
def design():
    return generate_design(
        SyntheticSpec(
            name="bs",
            cells_by_height={1: 60, 2: 8, 3: 4},
            density=0.5,
            seed=12,
            nets_per_cell=0.6,
        )
    )


class TestRoundTrip:
    def test_structure_preserved(self, design, tmp_path):
        aux = save_bookshelf(design, tmp_path)
        loaded, placement = load_bookshelf(aux)
        assert loaded.num_cells == design.num_cells
        assert loaded.num_rows == design.num_rows
        assert loaded.num_sites == design.num_sites
        assert loaded.site_width == design.site_width
        assert loaded.row_height == design.row_height

    def test_footprints_preserved(self, design, tmp_path):
        aux = save_bookshelf(design, tmp_path)
        loaded, _ = load_bookshelf(aux)
        for original, copy in zip(design.cells, loaded.cells):
            assert original.name == copy.name
            assert original.cell_type.width == copy.cell_type.width
            assert original.cell_type.height == copy.cell_type.height
            assert original.fixed == copy.fixed

    def test_gp_positions_preserved(self, design, tmp_path):
        aux = save_bookshelf(design, tmp_path)
        loaded, _ = load_bookshelf(aux)
        for cell in range(design.num_cells):
            assert loaded.gp_x[cell] == pytest.approx(design.gp_x[cell], abs=1e-6)
            assert loaded.gp_y[cell] == pytest.approx(design.gp_y[cell], abs=1e-6)

    def test_nets_preserved(self, design, tmp_path):
        aux = save_bookshelf(design, tmp_path)
        loaded, _ = load_bookshelf(aux)
        assert len(loaded.netlist) == len(design.netlist)
        for a, b in zip(design.netlist.nets, loaded.netlist.nets):
            assert [p.cell for p in a.pins] == [p.cell for p in b.pins]

    def test_placement_export(self, design, tmp_path):
        placement = Placement.from_gp_rounded(design)
        placement.move(0, 7, 3)
        aux = save_bookshelf(design, tmp_path, placement=placement)
        _, loaded_placement = load_bookshelf(aux)
        assert loaded_placement.position(0) == (7, 3)

    def test_legalize_after_load(self, design, tmp_path):
        from repro import LegalizerParams, legalize
        from repro.checker import check_legal

        aux = save_bookshelf(design, tmp_path)
        loaded, _ = load_bookshelf(aux)
        result = legalize(
            loaded, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        assert check_legal(result.placement).is_legal


class TestParsingErrors:
    def test_missing_file_entry(self, tmp_path):
        aux = tmp_path / "x.aux"
        aux.write_text("RowBasedPlacement : x.nodes x.pl\n")
        with pytest.raises(ValueError, match="missing .scl"):
            load_bookshelf(aux)

    def test_malformed_aux(self, tmp_path):
        aux = tmp_path / "x.aux"
        aux.write_text("garbage\n")
        with pytest.raises(ValueError, match="malformed"):
            load_bookshelf(aux)

    def test_fractional_footprint_rejected(self, design, tmp_path):
        aux = save_bookshelf(design, tmp_path)
        nodes = tmp_path / "bs.nodes"
        content = nodes.read_text().replace(
            content_first_cell_line(nodes), rewidth(content_first_cell_line(nodes))
        )
        nodes.write_text(content)
        with pytest.raises(ValueError, match="multiple"):
            load_bookshelf(aux)

    def test_non_uniform_rows_rejected(self, design, tmp_path):
        aux = save_bookshelf(design, tmp_path)
        scl = tmp_path / "bs.scl"
        text = scl.read_text()
        text = text.replace("Height : 2", "Height : 3", 1)
        scl.write_text(text)
        with pytest.raises(ValueError, match="non-uniform"):
            load_bookshelf(aux)


def content_first_cell_line(nodes_path) -> str:
    for line in nodes_path.read_text().splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith(("UCLA", "Num")):
            return line
    raise AssertionError("no cell line found")


def rewidth(line: str) -> str:
    tokens = line.split()
    tokens[1] = str(float(tokens[1]) + 0.07)
    return "  " + " ".join(tokens)
