"""Tests for repro.obs.metrics and the PerfRecorder shim over it."""

import json

import pytest

from repro.obs.metrics import (
    DISPLACEMENT_BUCKETS,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.perf import PerfRecorder


class TestHistogram:
    def test_bounds_must_strictly_increase(self):
        for bad in ([], [1.0, 1.0], [2.0, 1.0]):
            with pytest.raises(ValueError):
                Histogram(bad)

    def test_inclusive_upper_bounds(self):
        hist = Histogram([1.0, 2.0, 4.0])
        for value in (0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5):
            hist.observe(value)
        # <=1: {0, 1}; <=2: {1.5, 2}; <=4: {3, 4}; overflow: {4.5}.
        assert hist.counts == [2, 2, 2, 1]
        assert hist.total == 7
        assert hist.sum == pytest.approx(16.0)
        assert hist.mean == pytest.approx(16.0 / 7)

    def test_empty_histogram(self):
        hist = Histogram(DISPLACEMENT_BUCKETS)
        assert hist.mean == 0.0
        snapshot = hist.as_dict()
        assert snapshot["count"] == 0
        assert snapshot["counts"] == [0] * (len(DISPLACEMENT_BUCKETS) + 1)

    def test_as_dict_shape(self):
        hist = Histogram([1.0, 2.0])
        hist.observe(0.5)
        snapshot = hist.as_dict()
        assert snapshot == {
            "bounds": [1.0, 2.0],
            "counts": [1, 0, 0],
            "count": 1,
            "sum": 0.5,
            "mean": 0.5,
        }


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.count("evals")
        registry.count("evals", 4)
        registry.set_gauge("hit_rate", 10.0)
        registry.set_gauge("hit_rate", 55.5)
        assert registry.counters == {"evals": 5}
        assert registry.gauges == {"hit_rate": 55.5}

    def test_timings_accumulate_with_call_counts(self):
        registry = MetricsRegistry()
        registry.record_time("mgl", 1.0)
        registry.record_time("mgl", 0.5)
        assert registry.timings == {"mgl": 1.5}
        assert registry.stage_calls == {"mgl": 2}

    def test_histogram_identity_includes_bounds(self):
        registry = MetricsRegistry()
        created = registry.histogram("disp", [1.0, 2.0])
        assert registry.histogram("disp") is created
        assert registry.histogram("disp", [1.0, 2.0]) is created
        with pytest.raises(ValueError):
            registry.histogram("disp", [1.0, 3.0])
        with pytest.raises(KeyError):
            registry.histogram("unknown")

    def test_observe_registers_and_records(self):
        registry = MetricsRegistry()
        registry.observe("depth", 2.0, [1.0, 4.0])
        registry.observe("depth", 9.0, [1.0, 4.0])
        hist = registry.histogram("depth")
        assert hist.counts == [0, 1, 1]

    def test_serialization_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.count("b", 2)
            registry.count("a", 1)
            registry.set_gauge("g", 1.23456789)
            registry.observe("h", 0.5, [1.0])
            return registry

        assert build().to_json() == build().to_json()
        payload = json.loads(build().to_json())
        assert set(payload) == {
            "timings", "stage_calls", "counters", "gauges", "histograms"
        }
        assert payload["gauges"]["g"] == 1.234568  # rounded for stability


class TestPerfRecorderShim:
    def test_legacy_views_are_live(self):
        recorder = PerfRecorder()
        recorder.count("evals", 3)
        recorder.registry.count("evals", 2)
        assert recorder.counters == {"evals": 5}
        recorder.record("mgl", 0.25)
        assert recorder.registry.timings == {"mgl": 0.25}
        assert recorder.stage_calls == {"mgl": 1}

    def test_shared_registry_injection(self):
        registry = MetricsRegistry()
        recorder = PerfRecorder(registry)
        recorder.count("x")
        assert registry.counters == {"x": 1}

    def test_stage_times_the_block(self):
        recorder = PerfRecorder()
        with recorder.stage("work"):
            sum(range(1000))
        assert recorder.timings["work"] >= 0.0
        assert recorder.stage_calls["work"] == 1

    def test_merge_counters_with_prefix(self):
        recorder = PerfRecorder()
        recorder.merge_counters({"hits": 3, "misses": 1}, prefix="mgl.")
        assert recorder.counters == {"mgl.hits": 3, "mgl.misses": 1}


class TestDerivedRates:
    """Satellite fix: derived rates live in their own section, not the
    raw counters, both in summaries and JSON output."""

    def build(self, hits=3, misses=1):
        recorder = PerfRecorder()
        recorder.record("mgl", 1.0)
        recorder.merge_counters(
            {"gap_cache_hits": hits, "gap_cache_misses": misses},
            prefix="mgl.",
        )
        return recorder

    def test_derived_requires_traffic(self):
        assert PerfRecorder().derived() == {}
        assert self.build().derived() == {
            "gap_cache_hit_rate": pytest.approx(75.0)
        }

    def test_summary_has_a_derived_section(self):
        summary = self.build().summary()
        assert "derived" in summary
        assert "hit rate: 75.0%" in summary
        # The rate renders after the raw counters, inside "derived".
        assert summary.index("derived") > summary.index("counters")
        assert summary.index("hit rate") > summary.index("derived")

    def test_as_dict_separates_derived_from_counters(self):
        payload = self.build().as_dict()
        assert payload["derived"] == {"gap_cache_hit_rate": 75.0}
        assert "gap_cache_hit_rate" not in payload["counters"]
        # And an untrafficked recorder still has the (empty) section.
        assert PerfRecorder().as_dict()["derived"] == {}

    def test_write_json_round_trips(self, tmp_path):
        path = tmp_path / "profile.json"
        self.build().write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["derived"]["gap_cache_hit_rate"] == 75.0
        assert payload["counters"]["mgl.gap_cache_hits"] == 3


class TestPrometheusRendering:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.count("mgl.insertions_evaluated", 42)
        registry.set_gauge("mgl.gap_cache_hit_rate", 0.25)
        registry.record_time("mgl", 1.5)
        registry.record_time("mgl", 0.5)
        registry.observe("scheduler.batch_occupancy", 3.0, (1.0, 2.0, 4.0))
        registry.observe("scheduler.batch_occupancy", 9.0, (1.0, 2.0, 4.0))
        return registry

    def test_counter_gauge_and_timing_series(self):
        text = self.build().render_prometheus()
        assert "# TYPE repro_mgl_insertions_evaluated_total counter" in text
        assert "repro_mgl_insertions_evaluated_total 42" in text
        assert "# TYPE repro_mgl_gap_cache_hit_rate gauge" in text
        assert "repro_mgl_gap_cache_hit_rate 0.25" in text
        # Timings render as a seconds/calls counter pair.
        assert "repro_mgl_seconds_total 2.0" in text
        assert "repro_mgl_calls_total 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = self.build().render_prometheus()
        assert '# TYPE repro_scheduler_batch_occupancy histogram' in text
        assert 'repro_scheduler_batch_occupancy_bucket{le="1.0"} 0' in text
        assert 'repro_scheduler_batch_occupancy_bucket{le="4.0"} 1' in text
        assert 'repro_scheduler_batch_occupancy_bucket{le="+Inf"} 2' in text
        assert "repro_scheduler_batch_occupancy_sum 12.0" in text
        assert "repro_scheduler_batch_occupancy_count 2" in text

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.count("a.b-c d", 1)
        text = registry.render_prometheus()
        assert "repro_a_b_c_d_total 1" in text

    def test_deterministic_and_newline_terminated(self):
        first = self.build().render_prometheus()
        second = self.build().render_prometheus()
        assert first == second
        assert first.endswith("\n")
        assert MetricsRegistry().render_prometheus() == ""

    def test_custom_prefix(self):
        registry = MetricsRegistry()
        registry.count("cells", 7)
        assert "myapp_cells_total 7" in registry.render_prometheus("myapp")


class TestParsePrometheus:
    def test_round_trips_the_registry_rendering(self):
        registry = MetricsRegistry()
        registry.count("mgl.insertions_evaluated", 42)
        registry.set_gauge("mgl.gap_cache_hit_rate", 0.25)
        registry.observe("scheduler.batch_occupancy", 3.0, (1.0, 2.0, 4.0))
        series = parse_prometheus(registry.render_prometheus())
        assert series["repro_mgl_insertions_evaluated_total"] == 42.0
        assert series["repro_mgl_gap_cache_hit_rate"] == 0.25
        # Labeled bucket series keep their label block in the key.
        assert series['repro_scheduler_batch_occupancy_bucket{le="+Inf"}'] == 1.0
        assert series["repro_scheduler_batch_occupancy_count"] == 1.0

    def test_comments_blanks_and_garbage_are_skipped(self):
        text = "\n".join([
            "# HELP x some help",
            "# TYPE x counter",
            "",
            "x_total 3",
            "lonely_name_without_value",
            "bad_value nan-ish?",
            'labeled{le="1.0", q="a b"} 7',
        ])
        series = parse_prometheus(text)
        assert series == {
            "x_total": 3.0,
            'labeled{le="1.0", q="a b"}': 7.0,
        }

    def test_empty_text_parses_to_empty(self):
        assert parse_prometheus("") == {}
