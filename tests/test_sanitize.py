"""Tests for the runtime determinism sanitizer (``repro-lint sanitize``).

The cheap paths (matrix comparison, exit codes, canary gating) are
unit-tested in-process with a faked child spawner; the perturbation
shims run in real subprocesses so they cannot leak patched builtins or
numpy globals into the test session; one end-to-end CLI run covers the
full child protocol on a reduced corpus.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

import tools.repro_lint.sanitize as sanitize  # noqa: E402
from tools.repro_lint.sanitize import (  # noqa: E402
    CASE_NAMES,
    CaseResult,
    ChildReport,
    run_corpus,
    sanitize_main,
    tripwire_canary,
)


def _subprocess_env():
    env = dict(os.environ)
    extra = f"{REPO_ROOT}{os.pathsep}{REPO_ROOT / 'src'}"
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{extra}{os.pathsep}{existing}" if existing else extra
    )
    return env


# ----------------------------------------------------------------------
# Perturbation shims
# ----------------------------------------------------------------------


def test_tripwire_canary_is_silent_without_the_patch():
    # In an unpatched interpreter the injection counter cannot move, so
    # the canary must NOT fire — otherwise it proves nothing.
    assert tripwire_canary() is False


def test_tripwire_canary_fires_in_patched_subprocess():
    script = (
        "from tools.repro_lint.sanitize import (install_perturbation, "
        "tripwire_canary)\n"
        "install_perturbation('tripwire', 1)\n"
        "print('fired' if tripwire_canary() else 'dead')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], env=_subprocess_env(),
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "fired"


def test_tripwire_respects_explicit_kind():
    script = (
        "import numpy as np\n"
        "from tools.repro_lint.sanitize import install_perturbation\n"
        "install_perturbation('tripwire', 1)\n"
        "keys = (np.arange(64) % 4).astype(float)\n"
        "pinned = np.argsort(keys, kind='stable')\n"
        "real = sorted(range(64), key=lambda i: (keys[i], i))\n"
        "print('ok' if list(pinned) == real else 'broken')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], env=_subprocess_env(),
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def _shuffle_order(salt):
    script = (
        "import sys\n"
        "from tools.repro_lint.sanitize import install_perturbation\n"
        f"install_perturbation('shuffle', {salt})\n"
        "s = set(range(32))\n"
        "print(','.join(str(x) for x in s))\n"
        "print(len(s), 5 in s, sorted(s) == list(range(32)))\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], env=_subprocess_env(),
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    order_line, semantics_line = proc.stdout.strip().splitlines()
    assert semantics_line == "32 True True"  # the shim only reorders
    return [int(x) for x in order_line.split(",")]


def test_shuffled_set_shim_perturbs_iteration_per_salt():
    one = _shuffle_order(1)
    two = _shuffle_order(2)
    assert sorted(one) == sorted(two) == list(range(32))
    assert one != list(range(32)) or two != list(range(32))
    assert one != two  # different salts, different poison


# ----------------------------------------------------------------------
# Matrix comparison / exit codes (faked children, no subprocesses)
# ----------------------------------------------------------------------


def _base_results():
    return {
        name: CaseResult(placement=f"p-{name}", trace=f"t-{name}")
        for name in CASE_NAMES
    }


def _patch_harness(monkeypatch, spawn):
    monkeypatch.setattr(sanitize, "ensure_corpus", lambda *a, **k: None)
    monkeypatch.setattr(sanitize, "_spawn_child", spawn)


def test_sanitize_green_matrix_exits_0(monkeypatch, capsys):
    def spawn(root, perturb, salt, hashseed, cases, corpus_dir):
        return ChildReport(
            results=_base_results(),
            canary_fired=True if perturb == "tripwire" else None,
        )

    _patch_harness(monkeypatch, spawn)
    assert sanitize_main(["--seeds", "2"]) == 0
    out = capsys.readouterr()
    assert "8 perturbed run(s) matched" in out.err
    assert "| 2 | crash |" in out.out  # matrix rendered to stdout


def test_sanitize_divergence_exits_1(monkeypatch, capsys):
    def spawn(root, perturb, salt, hashseed, cases, corpus_dir):
        results = _base_results()
        if perturb == "shuffle":
            results["workers"] = CaseResult(placement="DIFF", trace="DIFF")
        return ChildReport(
            results=results,
            canary_fired=True if perturb == "tripwire" else None,
        )

    _patch_harness(monkeypatch, spawn)
    assert sanitize_main(["--seeds", "1"]) == 1
    err = capsys.readouterr().err
    assert "divergence under shuffle" in err
    assert "workers" in err


def test_sanitize_dead_canary_exits_2(monkeypatch, capsys):
    # A tripwire leg whose canary never fired proves nothing: that is
    # an internal error even though every hash "matched".
    def spawn(root, perturb, salt, hashseed, cases, corpus_dir):
        return ChildReport(
            results=_base_results(),
            canary_fired=False if perturb == "tripwire" else None,
        )

    _patch_harness(monkeypatch, spawn)
    assert sanitize_main(["--seeds", "1"]) == 2
    assert "canary did not fire" in capsys.readouterr().err


def test_sanitize_baseline_failure_exits_2(monkeypatch, capsys):
    def spawn(root, perturb, salt, hashseed, cases, corpus_dir):
        return ChildReport(results={}, error="child exited 1: boom")

    _patch_harness(monkeypatch, spawn)
    assert sanitize_main(["--seeds", "1"]) == 2
    assert "baseline run failed" in capsys.readouterr().err


def test_sanitize_crashed_child_exits_2(monkeypatch, capsys):
    def spawn(root, perturb, salt, hashseed, cases, corpus_dir):
        if perturb == "crash":
            return ChildReport(results={}, error="child exited 134: SIGABRT")
        return ChildReport(
            results=_base_results(),
            canary_fired=True if perturb == "tripwire" else None,
        )

    _patch_harness(monkeypatch, spawn)
    assert sanitize_main(["--seeds", "1"]) == 2
    assert "internal error" in capsys.readouterr().err


def test_sanitize_rejects_zero_seeds(capsys):
    assert sanitize_main(["--seeds", "0"]) == 2
    assert "--seeds" in capsys.readouterr().err


def test_sanitize_summary_file(monkeypatch, tmp_path, capsys):
    def spawn(root, perturb, salt, hashseed, cases, corpus_dir):
        return ChildReport(
            results=_base_results(),
            canary_fired=True if perturb == "tripwire" else None,
        )

    _patch_harness(monkeypatch, spawn)
    summary = tmp_path / "matrix.md"
    assert sanitize_main(
        ["--seeds", "1", "--summary", str(summary)]
    ) == 0
    capsys.readouterr()
    text = summary.read_text(encoding="utf-8")
    assert "## Determinism sanitizer" in text
    for perturb in ("hashseed", "shuffle", "tripwire", "crash"):
        assert f"| 1 | {perturb} |" in text
    assert "DIVERGED" not in text


# ----------------------------------------------------------------------
# End-to-end on a reduced corpus
# ----------------------------------------------------------------------


def test_sanitize_cli_end_to_end(tmp_path):
    summary = tmp_path / "summary.md"
    proc = subprocess.run(
        [
            sys.executable, "-m", "tools.repro_lint", "sanitize",
            "--root", str(REPO_ROOT), "--seeds", "1",
            "--cases", "serial_fence",
            "--perturbations", "tripwire", "shuffle",
            "--corpus-dir", str(tmp_path / "corpus"),
            "--summary", str(summary),
        ],
        env=_subprocess_env(), cwd=REPO_ROOT,
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    text = summary.read_text(encoding="utf-8")
    assert "| 1 | tripwire | match | ok |" in text
    assert "| 1 | shuffle | match | ok |" in text
    # The corpus cache was materialized for reuse.
    assert list((tmp_path / "corpus").glob("*.pkl"))


# ----------------------------------------------------------------------
# Harness neutrality
# ----------------------------------------------------------------------


def test_run_corpus_is_deterministic(tmp_path):
    once = run_corpus(cases=["serial_fence"], corpus_dir=tmp_path)
    twice = run_corpus(cases=["serial_fence"], corpus_dir=tmp_path)
    assert once == twice
    assert set(once) == {"serial_fence"}


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(1, 10_000), ncells=st.integers(20, 40))
def test_harness_is_placement_neutral_unperturbed(seed, ncells):
    """Attaching the sanitizer's tracer harness must not change the
    placement: hash-of-harness-run == hash-of-direct-run, always."""
    from repro.benchgen import SyntheticSpec, generate_design
    from repro.core.mgl import MGLegalizer
    from repro.core.params import LegalizerParams
    from repro.obs.manifest import placement_digest
    from repro.obs.tracer import SpanTracer

    spec = SyntheticSpec(
        name=f"neutral-{seed}", cells_by_height={1: ncells},
        density=0.5, seed=seed,
    )
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    harness = MGLegalizer(
        generate_design(spec), params, tracer=SpanTracer()
    ).run()
    direct = MGLegalizer(generate_design(spec), params).run()
    assert placement_digest(harness) == placement_digest(direct)
