"""Unit tests for the netlist and HPWL."""

import pytest

from repro.model.netlist import Net, Netlist, PinRef, hpwl


class TestNetlist:
    def test_degree(self):
        net = Net("n", [PinRef(0), PinRef(1)], terminals=[(0.0, 0.0)])
        assert net.degree == 3

    def test_cell_index(self):
        netlist = Netlist([
            Net("a", [PinRef(0), PinRef(1)]),
            Net("b", [PinRef(1), PinRef(2)]),
        ])
        assert netlist.nets_of_cell(1) == [0, 1]
        assert netlist.nets_of_cell(0) == [0]
        assert netlist.nets_of_cell(9) == []

    def test_index_invalidated_on_add(self):
        netlist = Netlist()
        netlist.add_net(Net("a", [PinRef(0)]))
        assert netlist.nets_of_cell(0) == [0]
        netlist.add_net(Net("b", [PinRef(0)]))
        assert netlist.nets_of_cell(0) == [0, 1]

    def test_len_and_iter(self):
        netlist = Netlist([Net("a"), Net("b")])
        assert len(netlist) == 2
        assert [n.name for n in netlist] == ["a", "b"]


class TestHpwl:
    def test_two_pin_net(self):
        netlist = Netlist([Net("n", [PinRef(0), PinRef(1)])])
        positions = [(0.0, 0.0), (3.0, 4.0)]
        assert hpwl(netlist, positions) == 7.0

    def test_multi_pin_bounding_box(self):
        netlist = Netlist([Net("n", [PinRef(0), PinRef(1), PinRef(2)])])
        positions = [(0.0, 0.0), (10.0, 1.0), (5.0, 6.0)]
        assert hpwl(netlist, positions) == 10.0 + 6.0

    def test_terminals_counted(self):
        netlist = Netlist([Net("n", [PinRef(0)], terminals=[(5.0, 5.0)])])
        assert hpwl(netlist, [(1.0, 1.0)]) == 8.0

    def test_degenerate_nets_zero(self):
        netlist = Netlist([Net("single", [PinRef(0)]), Net("empty")])
        assert hpwl(netlist, [(3.0, 3.0)]) == 0.0

    def test_sum_over_nets(self):
        netlist = Netlist([
            Net("a", [PinRef(0), PinRef(1)]),
            Net("b", [PinRef(1), PinRef(2)]),
        ])
        positions = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]
        assert hpwl(netlist, positions) == pytest.approx(4.0)
