"""The TUTORIAL.md walkthrough, executed end to end.

Keeps the documentation honest: if the tutorial's code stops working,
this test fails.
"""

import random

import pytest

from repro import LegalizerParams, legalize
from repro.checker import check_legal, placement_report
from repro.core.incremental import IncrementalLegalizer
from repro.io import save_bookshelf, save_design, save_placement
from repro.model import (
    CellType,
    Design,
    EdgeSpacingTable,
    FenceRegion,
    PinShape,
    Rect,
    Technology,
)
from repro.model.rails import standard_pg_grid
from repro.viz import render_displacement_svg


@pytest.fixture(scope="module")
def tutorial_state():
    tech = Technology(
        cell_types=[
            CellType("INV", 2, 1,
                     pins=(PinShape("a", 1, Rect(0.05, 0.3, 0.2, 0.7)),),
                     left_edge=1, right_edge=1),
            CellType("NAND", 3, 1),
            CellType("DFF2", 4, 2),
            CellType("ALU3", 5, 3),
        ],
        edge_spacing=EdgeSpacingTable([(1, 1, 1)]),
    )
    design = Design(tech, num_rows=24, num_sites=160)
    design.add_fence(FenceRegion(1, "cluster", [Rect(40, 4, 100, 14)]))
    design.rails = standard_pg_grid(
        design.chip_rect_length_units, design.row_height
    )
    rng = random.Random(1)
    for index in range(250):
        cell_type = rng.choice(tech.cell_types)
        fence = 1 if rng.random() < 0.10 else 0
        if fence:
            x = rng.uniform(40, 100 - cell_type.width)
            y = rng.uniform(4, 14 - cell_type.height)
        else:
            x = rng.uniform(0, 160 - cell_type.width)
            y = rng.uniform(0, 24 - cell_type.height)
        design.add_cell(f"u{index}", cell_type, x, y, fence_id=fence)
    design.validate()
    result = legalize(design, LegalizerParams())
    return design, result


def test_legalizes_and_reports(tutorial_state):
    design, result = tutorial_state
    placement = result.placement
    assert check_legal(placement).is_legal
    text = placement_report(placement)
    assert "per-height displacement" in text
    assert result.after_matching.max_disp <= result.after_mgl.max_disp + 1e-9


def test_svg_renders(tutorial_state, tmp_path):
    design, result = tutorial_state
    svg = render_displacement_svg(result.placement)
    assert svg.startswith("<svg")


def test_eco_step(tutorial_state):
    design, result = tutorial_state
    placement = result.placement.copy()
    eco = IncrementalLegalizer(design, placement)
    design.cells[7].gp_x = min(
        design.num_sites - design.cell_type_of(7).width,
        design.cells[7].gp_x + 25,
    )
    design._gp_x_array = None
    outcome = eco.relegalize([7])
    assert eco.verify()
    assert outcome.placed == [7]


def test_persistence(tutorial_state, tmp_path):
    design, result = tutorial_state
    save_design(design, tmp_path / "design.txt")
    save_placement(result.placement, tmp_path / "placement.txt")
    aux = save_bookshelf(design, tmp_path / "bundle",
                         placement=result.placement)
    assert aux.exists()
