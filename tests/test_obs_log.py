"""Logging setup: format selection, stream policy, idempotence."""

import io
import json
import logging

import pytest

from repro.obs.log import get_logger, setup_logging


@pytest.fixture(autouse=True)
def restore_repro_logger():
    logger = get_logger()
    saved = list(logger.handlers)
    try:
        yield
    finally:
        logger.handlers[:] = saved


class TestHumanFormat:
    def test_level_name_message_lines(self):
        stream = io.StringIO()
        setup_logging("info", stream=stream)
        get_logger("cli").info("wrote %s", "out.json")
        assert stream.getvalue() == "INFO repro.cli: wrote out.json\n"

    def test_level_filtering(self):
        stream = io.StringIO()
        setup_logging("warning", stream=stream)
        get_logger("cli").info("chatty")
        get_logger("cli").warning("real")
        assert "chatty" not in stream.getvalue()
        assert "real" in stream.getvalue()


class TestJsonFormat:
    def test_one_sorted_object_per_line(self):
        stream = io.StringIO()
        setup_logging("info", stream=stream, fmt="json")
        get_logger("cli").info("wrote %s", "out.json")
        get_logger("shard").warning("slow band %d", 3)
        lines = stream.getvalue().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert records[0] == {
            "level": "info",
            "logger": "repro.cli",
            "message": "wrote out.json",
        }
        assert records[1]["level"] == "warning"
        assert records[1]["logger"] == "repro.shard"
        assert lines[0] == json.dumps(records[0], sort_keys=True)

    def test_exceptions_carry_exc_info(self):
        stream = io.StringIO()
        setup_logging("info", stream=stream, fmt="json")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger().exception("failed")
        (line,) = stream.getvalue().strip().split("\n")
        record = json.loads(line)
        assert record["level"] == "error"
        assert "RuntimeError: boom" in record["exc_info"]


class TestSetupPolicy:
    def test_invalid_level_and_format_are_rejected(self):
        with pytest.raises(ValueError, match="log level"):
            setup_logging("loud")
        with pytest.raises(ValueError, match="log format"):
            setup_logging("info", fmt="xml")

    def test_repeat_setup_does_not_stack_handlers(self):
        setup_logging("info", stream=io.StringIO())
        setup_logging("info", stream=io.StringIO(), fmt="json")
        assert len(get_logger().handlers) == 1

    def test_root_logger_is_left_alone(self):
        before = list(logging.getLogger().handlers)
        setup_logging("info", stream=io.StringIO())
        assert logging.getLogger().handlers == before
        assert get_logger().propagate is False
