"""Tests for the insertion search's caps and pruning machinery."""

import pytest

from repro.core.insertion import InsertionContext
from repro.core.occupancy import Occupancy
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


@pytest.fixture
def crowded_row():
    """One row with many alternating cells and gaps."""
    tech = Technology(cell_types=[CellType("U", 2, 1)])
    design = Design(tech, num_rows=1, num_sites=120, name="caps")
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    for index in range(20):
        cell = design.add_cell(f"c{index}", tech.type_named("U"), 0, 0)
        placement.x.append(0)
        placement.y.append(0)
        placement.move(cell, 5 * index, 0)
        occupancy.add(cell)
    target = design.add_cell("t", tech.type_named("U"), 60.0, 0.0)
    placement.x.append(0)
    placement.y.append(0)
    return design, placement, occupancy, target


class TestGapCap:
    def test_cap_limits_gap_count(self, crowded_row):
        design, placement, occupancy, target = crowded_row
        limited = InsertionContext(
            design, occupancy, target, design.chip_rect, max_gaps_per_row=5
        )
        unlimited = InsertionContext(
            design, occupancy, target, design.chip_rect, max_gaps_per_row=1000
        )
        assert len(limited.gaps_in_row(0)) == 5
        assert len(unlimited.gaps_in_row(0)) == 21  # 20 cells -> 21 gaps

    def test_cap_keeps_gaps_near_gp(self, crowded_row):
        design, placement, occupancy, target = crowded_row
        context = InsertionContext(
            design, occupancy, target, design.chip_rect, max_gaps_per_row=3
        )
        gaps = context.gaps_in_row(0)
        # All kept gaps must be reachable near the GP (x = 60).
        for gap in gaps:
            distance = max(0.0, gap.lo_rough - 60.0, 60.0 - gap.hi_rough)
            assert distance <= 30

    def test_max_insertion_points_cap(self, crowded_row):
        design, placement, occupancy, target = crowded_row
        context = InsertionContext(
            design, occupancy, target, design.chip_rect, max_gaps_per_row=1000
        )
        few = list(context.enumerate_insertion_points(3))
        many = list(context.enumerate_insertion_points(1000))
        assert len(few) == 3
        assert len(many) > len(few)


class TestWindowFiltering:
    def test_window_excludes_far_runs(self, crowded_row):
        design, placement, occupancy, target = crowded_row
        from repro.model.geometry import Rect

        narrow = InsertionContext(
            design, occupancy, target, Rect(55, 0, 70, 1), max_gaps_per_row=1000
        )
        gaps = narrow.gaps_in_row(0)
        # Only gaps overlapping the window's x-range qualify; the
        # enumeration must not offer the far-left/far-right free space.
        for gap in gaps:
            assert gap.hi_rough >= 50 or gap.lo_rough <= 75

    def test_empty_window_no_gaps(self, crowded_row):
        design, placement, occupancy, target = crowded_row
        from repro.model.geometry import Rect

        context = InsertionContext(
            design, occupancy, target, Rect(0, 0, 0, 0)
        )
        assert context.gaps_in_row(0) == []


class TestLowerBound:
    def test_bound_grows_with_row_distance(self, basic_tech):
        design = Design(basic_tech, num_rows=10, num_sites=40, name="lb")
        target = design.add_cell("t", basic_tech.type_named("S2"), 10.0, 5.0)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        context = InsertionContext(design, occupancy, target, design.chip_rect)
        bounds = []
        for bottom_row in (5, 6, 8):
            gaps = tuple([context.gaps_in_row(bottom_row)[0]])
            bounds.append(context.target_cost_lower_bound(bottom_row, gaps))
        assert bounds[0] < bounds[1] < bounds[2]
