"""Streaming progress events: throttling, ETA, sinks, and neutrality."""

import io
import json

from repro.core.legalizer import legalize
from repro.core.params import LegalizerParams
from repro.obs.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressEmitter,
    render_event,
)


def collecting_emitter(min_interval=0.0):
    events = []
    emitter = ProgressEmitter(callback=events.append,
                              min_interval=min_interval)
    return emitter, events


class TestEmitter:
    def test_events_carry_schema_fields_and_elapsed(self):
        emitter, events = collecting_emitter()
        emitter.phase("mgl", cells=10)
        emitter.cells(5, 10, disp=1.5)
        emitter.heartbeat("shard", shard=2, placed=7)
        kinds = [event["event"] for event in events]
        assert kinds == ["phase", "cells", "heartbeat"]
        assert events[0]["phase"] == "mgl" and events[0]["cells"] == 10
        assert events[1]["disp"] == 1.5
        assert events[2]["shard"] == 2
        assert all(event["elapsed"] >= 0.0 for event in events)
        assert emitter.events_emitted == 3

    def test_throttle_drops_intermediate_cells_but_never_final(self):
        emitter, events = collecting_emitter(min_interval=1000.0)
        emitter.cells(1, 10)
        emitter.cells(2, 10)
        emitter.cells(10, 10)  # final: placed >= total always goes out
        placed = [event["placed"] for event in events]
        assert placed == [1, 10]

    def test_phase_and_heartbeat_bypass_the_throttle(self):
        emitter, events = collecting_emitter(min_interval=1000.0)
        emitter.cells(1, 10)
        emitter.phase("matching")
        emitter.heartbeat("worker", worker=0)
        assert [event["event"] for event in events] == [
            "cells", "phase", "heartbeat",
        ]

    def test_eta_is_monotone_bookkeeping(self):
        emitter, events = collecting_emitter()
        emitter.cells(1, 100)
        (event,) = events
        # 1 of 100 placed in `elapsed` seconds -> 99x elapsed remaining.
        assert event["eta_seconds"] >= 0.0
        elapsed = event["elapsed"]
        if elapsed > 0:
            assert event["eta_seconds"] <= 99 * elapsed * 1.5 + 1e-6
        # Final events carry no ETA.
        emitter.cells(100, 100)
        assert "eta_seconds" not in events[-1]

    def test_disp_thunk_only_runs_for_emitted_events(self):
        calls = []

        def expensive():
            calls.append(1)
            return 12.5

        emitter, events = collecting_emitter(min_interval=1000.0)
        emitter.cells(1, 10, disp=expensive)   # emitted
        emitter.cells(2, 10, disp=expensive)   # throttled: thunk skipped
        emitter.cells(10, 10, disp=expensive)  # final: emitted
        assert len(calls) == 2
        assert [event["disp"] for event in events] == [12.5, 12.5]

    def test_jsonl_sink_gets_one_sorted_object_per_line(self):
        sink = io.StringIO()
        emitter = ProgressEmitter(sink=sink, min_interval=0.0)
        emitter.phase("mgl")
        emitter.cells(3, 3)
        emitter.close()
        lines = sink.getvalue().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["phase", "cells"]
        # sort_keys: byte-stable lines, diffable across runs.
        assert lines[0] == json.dumps(records[0], sort_keys=True)

    def test_null_progress_is_inert(self):
        assert not NULL_PROGRESS.enabled
        NULL_PROGRESS.phase("x")
        NULL_PROGRESS.cells(1, 2, disp=lambda: 1 / 0)  # never evaluated
        NULL_PROGRESS.heartbeat("shard")
        NULL_PROGRESS.close()
        assert isinstance(ProgressEmitter(), NullProgress)


class TestRenderEvent:
    def test_phase_cells_and_heartbeat_views(self):
        assert render_event(
            {"event": "phase", "phase": "mgl", "elapsed": 0.5, "cells": 9}
        ).endswith("phase mgl cells=9")
        cells_line = render_event({
            "event": "cells", "placed": 50, "total": 200, "disp": 8.1,
            "eta_seconds": 3.0, "elapsed": 1.0,
        })
        assert "placed 50/200 (25.0%)" in cells_line
        assert "disp 8.1" in cells_line and "eta 3.0s" in cells_line
        heartbeat = render_event({
            "event": "heartbeat", "kind": "shard", "shard": 1,
            "elapsed": 2.0,
        })
        assert "shard" in heartbeat and "shard=1" in heartbeat

    def test_malformed_elapsed_does_not_crash(self):
        assert "?" in render_event({"event": "phase", "elapsed": "soon"})


class TestObservationalNeutrality:
    def test_progress_on_and_off_place_identically(self, small_design):
        params = LegalizerParams(routability=False)
        baseline = legalize(small_design, params).placement
        emitter, events = collecting_emitter()
        observed = legalize(
            small_design, params, progress=emitter
        ).placement
        assert observed.x == baseline.x and observed.y == baseline.y
        phases = [
            event["phase"] for event in events
            if event["event"] == "phase"
        ]
        assert phases[0] == "mgl" and phases[-1] == "done"
        assert "matching" in phases and "flow_opt" in phases
        finals = [
            event for event in events
            if event["event"] == "cells"
            and event["placed"] == event["total"]
        ]
        assert finals and finals[-1]["total"] == small_design.num_cells
