"""End-to-end smoke runs of both benchmark suites at tiny scale.

Complements the per-table benches: every named suite case must build and
legalize cleanly even at the smallest scale (this is where degenerate
geometry — tiny fences, few rows — historically hid bugs).
"""

import pytest

from repro import LegalizerParams, legalize
from repro.baselines import legalize_tetris
from repro.benchgen import iccad2017_suite, ispd2015_suite
from repro.checker import check_legal, contest_score

ICCAD_SMOKE = ["des_perf_a_md2", "fft_a_md2", "pci_bridge32_b_md1"]
ISPD_SMOKE = ["des_perf_b", "fft_b", "matrix_mult_c", "superblue11_a"]


@pytest.mark.parametrize("name", ICCAD_SMOKE)
def test_iccad_case_full_flow(name):
    case = iccad2017_suite(scale=0.002, names=[name])[0]
    design = case.build()
    design.validate()
    result = legalize(design, LegalizerParams(scheduler_capacity=1))
    assert check_legal(result.placement).is_legal
    score = contest_score(result.placement)
    assert score.score > 0


@pytest.mark.parametrize("name", ISPD_SMOKE)
def test_ispd_case_total_disp_protocol(name):
    case = ispd2015_suite(scale=0.002, names=[name])[0]
    design = case.build()
    result = legalize(
        design,
        LegalizerParams(
            routability=False, use_matching=False, scheduler_capacity=1
        ),
    )
    assert check_legal(result.placement).is_legal


def test_iccad_beats_champion_on_violations():
    case = iccad2017_suite(scale=0.003, names=["fft_2_md2"])[0]
    design = case.build()
    ours = legalize(design, LegalizerParams(scheduler_capacity=1)).placement
    champion = legalize_tetris(design)
    ours_score = contest_score(ours)
    champion_score = contest_score(champion)
    assert (
        ours_score.edge_violations + ours_score.pin_violations
        < champion_score.edge_violations + champion_score.pin_violations
    )
