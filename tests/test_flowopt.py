"""Tests for the fixed-row-fixed-order dual-MCF stage (paper §3.3)."""

import random

import pytest

from repro.checker import check_legal
from repro.core.flowopt import (
    FixedRowOrderProblem,
    build_dual_graph,
    build_problem,
    optimize_fixed_row_order,
    solve_lp,
    solve_mcf,
)
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


def chain_problem(gps, widths=None, lo=0, hi=100, weights=None, dys=None):
    """A single-row chain of cells in the given order."""
    n = len(gps)
    widths = widths or [2] * n
    return FixedRowOrderProblem(
        cells=list(range(n)),
        weights=weights or [1] * n,
        widths=widths,
        gp_x=list(gps),
        dy=dys or [0] * n,
        lower=[lo] * n,
        upper=[hi - w for w in widths],
        pairs=[(i, i + 1, widths[i]) for i in range(n - 1)],
    )


class TestSolvers:
    def test_separated_cells_reach_gp(self):
        problem = chain_problem([10, 20, 30])
        assert solve_mcf(problem, 0) == [10, 20, 30]
        assert solve_lp(problem, 0) == [10, 20, 30]

    def test_overlapping_gps_cluster(self):
        # Both want x=10 but must be 2 apart: optimum is {9,11},{10,12},{8,10}.
        problem = chain_problem([10, 10])
        xs = solve_mcf(problem, 0)
        assert xs[1] - xs[0] >= 2
        assert problem.objective(xs, 0) == 2

    def test_weights_break_ties(self):
        # Heavy first cell: it should sit exactly at its GP.
        problem = chain_problem([10, 10], weights=[5, 1])
        xs = solve_mcf(problem, 0)
        assert xs[0] == 10
        assert xs[1] == 12

    def test_bounds_respected(self):
        problem = chain_problem([0, 50], lo=5, hi=30)
        xs = solve_mcf(problem, 0)
        assert xs[0] >= 5
        assert xs[1] <= 28
        assert problem.check_feasible(xs) == []

    def test_max_disp_term_flattens_outlier(self):
        # Large n0 should trade total displacement for the worst cell.
        problem = chain_problem([0, 2, 4, 30], hi=200)
        plain = solve_mcf(problem, 0)
        weighted = solve_mcf(problem, 50)
        worst_plain = max(abs(x - g) for x, g in zip(plain, problem.gp_x))
        worst_weighted = max(abs(x - g) for x, g in zip(weighted, problem.gp_x))
        assert worst_weighted <= worst_plain

    @pytest.mark.parametrize("n0", [0, 1, 4])
    def test_mcf_equals_lp_random_chains(self, n0):
        rng = random.Random(31 + n0)
        for _ in range(15):
            n = rng.randint(1, 12)
            gps = sorted(rng.randint(0, 60) for _ in range(n))
            widths = [rng.randint(1, 4) for _ in range(n)]
            dys = [rng.randint(0, 3) for _ in range(n)]
            problem = chain_problem(gps, widths=widths, hi=80, dys=dys)
            mcf = solve_mcf(problem, n0)
            lp = solve_lp(problem, n0)
            assert problem.check_feasible(mcf) == []
            assert problem.check_feasible(lp) == []
            assert problem.objective(mcf, n0) == problem.objective(lp, n0)

    def test_dual_graph_size_matches_paper(self):
        """m+1 nodes and 4m+|E| edges without the max-disp extension."""
        problem = chain_problem([0, 10, 20])
        graph, v_z = build_dual_graph(problem, 0)
        assert graph.num_nodes == 4  # m + v_z
        assert graph.num_edges == 4 * 3 + 2  # f+/f-/fl/fr per cell + pairs
        # With the extension: + v_p + v_n, 2 edges per cell + 2.
        graph2, _ = build_dual_graph(problem, 5)
        assert graph2.num_nodes == 6
        assert graph2.num_edges == graph.num_edges + 2 * 3 + 2


class TestBuildProblem:
    def test_extracts_neighbors_and_bounds(self, basic_tech):
        design = Design(basic_tech, num_rows=2, num_sites=30, name="bp")
        design.add_cell("a", basic_tech.type_named("S2"), 3.0, 0.0)
        design.add_cell("b", basic_tech.type_named("S3"), 8.0, 0.0)
        placement = Placement(design)
        placement.move(0, 3, 0)
        placement.move(1, 8, 0)
        problem = build_problem(placement)
        assert problem.pairs == [(0, 1, 2)]
        assert problem.lower == [0, 0]
        assert problem.upper == [28, 27]

    def test_fixed_cells_become_bounds(self, basic_tech):
        design = Design(basic_tech, num_rows=1, num_sites=30, name="fx")
        design.add_cell("f", basic_tech.type_named("S4"), 10, 0, fixed=True)
        design.add_cell("m", basic_tech.type_named("S2"), 16.0, 0.0)
        placement = Placement(design)
        placement.move(0, 10, 0)
        placement.move(1, 16, 0)
        problem = build_problem(placement)
        assert problem.cells == [1]
        assert problem.lower[0] == 14  # fixed right edge at 14
        assert problem.pairs == []

    def test_multirow_pair_deduplicated(self, basic_tech):
        design = Design(basic_tech, num_rows=2, num_sites=30, name="mr")
        design.add_cell("d", basic_tech.type_named("D3"), 0.0, 0.0)
        design.add_cell("e", basic_tech.type_named("D3"), 10.0, 0.0)
        placement = Placement(design)
        placement.move(0, 0, 0)
        placement.move(1, 10, 0)
        problem = build_problem(placement)
        # Adjacent on two rows but only one constraint.
        assert problem.pairs == [(0, 1, 3)]

    def test_edge_gap_in_separation(self, edge_tech):
        design = Design(edge_tech, num_rows=1, num_sites=30, name="eg")
        design.add_cell("a", edge_tech.type_named("A"), 0.0, 0.0)
        design.add_cell("b", edge_tech.type_named("A"), 5.0, 0.0)
        placement = Placement(design)
        placement.move(0, 0, 0)
        placement.move(1, 5, 0)
        problem = build_problem(placement)
        assert problem.pairs == [(0, 1, 2 + 1)]  # width 2 + rule 1


class TestOptimize:
    def test_never_worsens_and_stays_legal(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        before = placement.total_displacement_sites()
        stats = optimize_fixed_row_order(placement, params)
        after = placement.total_displacement_sites()
        assert check_legal(placement).is_legal
        assert stats.objective_after <= stats.objective_before

    def test_rows_and_order_preserved(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        rows_before = list(placement.y)
        order_before = sorted(
            range(small_design.num_cells), key=lambda c: (placement.y[c], placement.x[c])
        )
        optimize_fixed_row_order(placement, params)
        assert placement.y == rows_before
        order_after = sorted(
            range(small_design.num_cells), key=lambda c: (placement.y[c], placement.x[c])
        )
        assert order_after == order_before

    def test_lp_backend(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        a = MGLegalizer(small_design, params).run()
        b = a.copy()
        stats_mcf = optimize_fixed_row_order(a, params, backend="mcf")
        stats_lp = optimize_fixed_row_order(b, params, backend="lp")
        assert stats_mcf.objective_after == stats_lp.objective_after

    def test_unknown_backend(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        with pytest.raises(ValueError):
            optimize_fixed_row_order(placement, params, backend="huh")
