"""Tests for ECO-style incremental legalization."""

import pytest

from repro.checker import check_legal
from repro.core.incremental import IncrementalLegalizer
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.placement import Placement


@pytest.fixture
def legal_state(small_design):
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    placement = MGLegalizer(small_design, params).run()
    assert check_legal(placement).is_legal
    return small_design, placement, params


class TestRelegalize:
    def test_ripup_reinsert_stays_legal(self, legal_state):
        design, placement, params = legal_state
        eco = IncrementalLegalizer(design, placement, params)
        victims = design.movable_cells()[:5]
        result = eco.relegalize(victims)
        assert sorted(result.placed) == sorted(victims)
        assert check_legal(placement).is_legal

    def test_untouched_cells_mostly_stay(self, legal_state):
        design, placement, params = legal_state
        before = list(placement.x)
        eco = IncrementalLegalizer(design, placement, params)
        victims = design.movable_cells()[:3]
        result = eco.relegalize(victims)
        moved_others = len(result.disturbed)
        # Spreads may nudge neighbors, but the vast majority must stay.
        assert moved_others <= design.num_cells // 10
        unchanged = sum(
            1 for c in range(design.num_cells)
            if placement.x[c] == before[c] and c not in victims
        )
        assert unchanged >= design.num_cells - len(victims) - moved_others

    def test_fixed_cell_rejected(self, basic_tech):
        from repro.model.design import Design

        design = Design(basic_tech, num_rows=4, num_sites=30, name="fx")
        design.add_cell("f", basic_tech.type_named("S2"), 3, 1, fixed=True)
        placement = Placement(design)
        placement.move(0, 3, 1)
        eco = IncrementalLegalizer(design, placement)
        with pytest.raises(ValueError):
            eco.relegalize([0])

    def test_verify_helper(self, legal_state):
        design, placement, params = legal_state
        eco = IncrementalLegalizer(design, placement, params)
        assert eco.verify()


class TestInsertNew:
    def test_new_cell_added_and_placed(self, legal_state):
        design, placement, params = legal_state
        new = design.add_cell(
            "eco_new", design.technology.type_named("S3"), 50.0, 10.0
        )
        placement.x.append(0)
        placement.y.append(0)
        eco = IncrementalLegalizer(design, placement, params)
        result = eco.insert_new(new)
        assert result.placed == [new]
        assert check_legal(placement).is_legal
        # Lands near its GP on a half-empty chip.
        assert placement.displacement(new) < 5.0

    def test_multirow_eco(self, legal_state):
        design, placement, params = legal_state
        new = design.add_cell(
            "eco_tall", design.technology.type_named("T3"), 30.0, 8.0
        )
        placement.x.append(0)
        placement.y.append(0)
        eco = IncrementalLegalizer(design, placement, params)
        eco.insert_new(new)
        assert check_legal(placement).is_legal
