"""Bit-equality of the vectorized (SoA) backend against the scalar oracle.

``eval_backend=vector`` routes gap enumeration, push analysis, curve
assembly, and the guard walk through :mod:`repro.core.soa`'s
structure-of-arrays fast paths.  The scalar backend stays in the tree as
the oracle, and the whole optimization is only legitimate while the two
are *bit-identical* — same placements, same ``insertions_evaluated``
counts, candidate for candidate.  These tests pin that contract:

* an end-to-end Hypothesis property over random mixed-height designs
  with fences and placement blockages, with routability on and off;
* per-candidate equality of :meth:`InsertionContext.evaluate` (vector)
  against :meth:`InsertionContext.evaluate_scalar` on live mid-run
  occupancies;
* gap-enumeration equality of :meth:`VectorEvaluator.gaps_in_segment`
  against the scalar ``_gaps_in_segment`` walk;
* the batch-computed candidate lower bound against its scalar form;
* :meth:`CurveSet.from_total` (the flat-assembly entry point) against
  the summing constructor, and 2-D ``values`` batches against scalar
  ``value`` calls.
"""

import random

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.curves import CurveSet, sum_curves
from repro.core.insertion import InsertionContext
from repro.core.mgl import LegalizationError, MGLegalizer, mgl_cell_order
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.core.soa import SoAState
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology

from tests.test_perf_equivalence import random_curves


def build_design(
    seed: int, density: float, with_fence: bool, with_blockage: bool
) -> Design:
    """A random mixed-height design with optional fence and blockage."""
    rng = random.Random(seed)
    tech = Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("D2", 2, 2),
            CellType("T3", 3, 3),
        ]
    )
    rows = rng.choice([8, 12])
    sites = rng.choice([40, 60])
    design = Design(tech, num_rows=rows, num_sites=sites, name=f"soa{seed}")
    fence_id = 0
    if with_fence:
        design.add_fence(
            FenceRegion(
                fence_id=1,
                name="f1",
                rects=[Rect(4, 0, sites // 2, rows // 2 * 2)],
            )
        )
        fence_id = 1
    if with_blockage:
        design.add_blockage(
            Rect(sites - 12, rows // 2, sites - 6, rows // 2 + 2)
        )
    target = density * rows * sites
    area = 0
    index = 0
    while area < target:
        cell_type = rng.choice(tech.cell_types)
        in_fence = with_fence and rng.random() < 0.3
        design.add_cell(
            f"c{index}",
            cell_type,
            rng.uniform(0, sites - cell_type.width),
            rng.uniform(0, rows - cell_type.height),
            fence_id=fence_id if in_fence else 0,
        )
        area += cell_type.width * cell_type.height
        index += 1
    return design


def run_once(
    design: Design, backend: str, routability: bool
) -> "tuple[list, dict]":
    params = LegalizerParams(routability=routability, eval_backend=backend)
    legalizer = MGLegalizer(design, params)
    placement = legalizer.run()
    return list(zip(placement.x, placement.y)), dict(legalizer.stats)


class TestBackendEquivalence:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), density=st.floats(0.2, 0.5),
           with_fence=st.booleans(), with_blockage=st.booleans(),
           routability=st.booleans())
    def test_vector_matches_scalar(self, seed, density, with_fence,
                                   with_blockage, routability):
        design = build_design(seed, density, with_fence, with_blockage)
        try:
            scalar_pos, scalar_stats = run_once(design, "scalar", routability)
        except LegalizationError:
            assume(False)  # Over-full fence/blockage draw; not this contract.
            return
        vector_pos, vector_stats = run_once(design, "vector", routability)
        assert vector_pos == scalar_pos
        assert (
            vector_stats["insertions_evaluated"]
            == scalar_stats["insertions_evaluated"]
        )
        assert (
            vector_stats["window_expansions"]
            == scalar_stats["window_expansions"]
        )


def _mid_run_states(
    seed: int, fraction: float = 0.6
) -> "tuple[Design, Occupancy, list[int]] | None":
    """A design with the first ``fraction`` of its cells legalized.

    Mid-run occupancies are where the backends actually disagree when
    they disagree — partially filled rows, pushed neighbors, snapped
    positions — so the per-candidate tests run against one instead of a
    synthetic hand-laid grid.  Returns the remaining (unplaced) cells,
    or None when the random draw turns out infeasible.
    """
    design = build_design(seed, 0.4, with_fence=True, with_blockage=True)
    legalizer = MGLegalizer(design, LegalizerParams(routability=False))
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    for cell in range(design.num_cells):
        if design.cells[cell].fixed:
            placement.move(
                cell, int(design.gp_x[cell]), int(design.gp_y[cell])
            )
            occupancy.add(cell)
    order = list(mgl_cell_order(design, legalizer.params))
    split = max(1, int(len(order) * fraction))
    try:
        for cell in order[:split]:
            legalizer.legalize_cell(occupancy, cell)
    except LegalizationError:
        return None
    return design, occupancy, order[split:]


def _context_pair(
    design: Design, occupancy: Occupancy, target: int
) -> "tuple[InsertionContext, InsertionContext]":
    """(scalar context, vector context) over the same frozen occupancy."""
    window = design.chip_rect
    scalar = InsertionContext(design, occupancy, target, window)
    vector = InsertionContext(
        design, occupancy, target, window,
        soa=SoAState(design, occupancy),
    )
    assert vector._vector is not None
    return scalar, vector


def _gap_fields(gap) -> tuple:
    return (
        gap.row, gap.segment.x_lo, gap.segment.x_hi, gap.left_cell,
        gap.right_cell, gap.left_bound, gap.right_bound,
        gap.left_wall_cell, gap.right_wall_cell, gap.lo_rough, gap.hi_rough,
    )


class TestPerCandidateEquality:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_gap_enumeration_matches_scalar(self, seed):
        state = _mid_run_states(seed)
        assume(state is not None)
        design, occupancy, remaining = state
        assume(remaining)
        scalar, vector = _context_pair(design, occupancy, remaining[0])
        evaluator = vector._vector
        for row in range(design.num_rows):
            for segment in design.segments_in_row(row):
                expected = scalar._gaps_in_segment(row, segment)
                got = evaluator.gaps_in_segment(row, segment)
                assert [_gap_fields(g) for g in got] == [
                    _gap_fields(g) for g in expected
                ], (row, segment)

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_evaluate_matches_scalar_per_candidate(self, seed):
        state = _mid_run_states(seed)
        assume(state is not None)
        design, occupancy, remaining = state
        assume(remaining)
        checked = 0
        for target in remaining[:3]:
            scalar, vector = _context_pair(design, occupancy, target)
            for bottom_row, gaps in vector.enumerate_insertion_points():
                expected = vector.evaluate_scalar(bottom_row, gaps)
                got = vector.evaluate(bottom_row, gaps)
                if expected is None:
                    assert got is None, (target, bottom_row)
                else:
                    assert got is not None, (target, bottom_row)
                    assert got.x == expected.x
                    assert got.y == expected.y
                    assert got.cost == expected.cost  # bit-equal, no tolerance
                    assert got.moves == expected.moves
                checked += 1
            # The scalar context enumerates the identical candidate set.
            assert [
                (row, tuple(_gap_fields(g) for g in gaps))
                for row, gaps in scalar.enumerate_insertion_points()
            ] == [
                (row, tuple(_gap_fields(g) for g in gaps))
                for row, gaps in vector.enumerate_insertion_points()
            ]
        assume(checked)

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_lower_bound_matches_scalar(self, seed):
        state = _mid_run_states(seed)
        assume(state is not None)
        design, occupancy, remaining = state
        assume(remaining)
        _, vector = _context_pair(design, occupancy, remaining[0])
        evaluator = vector._vector
        checked = 0
        for bottom_row, gaps in vector.enumerate_insertion_points():
            assert evaluator.lower_bound(bottom_row, gaps) == (
                vector.lower_bound_scalar(bottom_row, gaps)
            )
            checked += 1
        assume(checked)


class TestCurveBatching:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), count=st.integers(0, 8))
    def test_from_total_matches_constructor(self, seed, count):
        rng = random.Random(seed)
        curves = random_curves(rng, count)
        summed = CurveSet.from_total(sum_curves(curves))
        reference = CurveSet(curves)
        probes = [rng.uniform(-10, 50) for _ in range(25)]
        for x in probes:
            assert summed.value(x) == reference.value(x), x
        assert summed.minimize(-5.0, 45.0) == reference.minimize(-5.0, 45.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), count=st.integers(0, 8))
    def test_values_2d_batch_matches_scalar(self, seed, count):
        rng = random.Random(seed)
        compiled = CurveSet(random_curves(rng, count))
        # 6 x 8 = 48 points: above the scalar-path cutoff, exercising the
        # flattened searchsorted pass on a candidates-x-probes batch.
        grid = [
            [rng.uniform(-10, 50) for _ in range(8)] for _ in range(6)
        ]
        batch = compiled.values(grid)
        assert batch.shape == (6, 8)
        for i in range(6):
            for j in range(8):
                assert float(batch[i, j]) == compiled.value(grid[i][j])
