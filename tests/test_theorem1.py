"""Empirical verification of the paper's Theorem 1.

    "If all the cells in S are originally placed at optimal positions
    (total displacement is the smallest under the fixed row & fixed order
    constraint) w.r.t. their GP positions, the displacement curve ...
    obtained by adding up the displacement curves of all the cells in S
    is convex and piecewise linear."

The paper skips the proof; we verify the statement empirically: generate
random rows of cells, move them to their stage-3 optimum (our exact MCF),
build MGL's summed displacement curve for a virtual insertion, and check
convexity.  A counter-check shows that *without* the optimality
precondition the sum can be non-convex (which is exactly why the
implementation evaluates every breakpoint instead of relying on
convexity — §3.1's closing remark).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.curves import DisplacementCurve, sum_curves
from repro.core.flowopt import FixedRowOrderProblem, solve_mcf


def build_row(rng, n):
    """Random single-row instance: GPs, widths, generous bounds."""
    gps = sorted(rng.randint(0, 8 * n) for _ in range(n))
    widths = [rng.randint(1, 4) for _ in range(n)]
    return FixedRowOrderProblem(
        cells=list(range(n)),
        weights=[1] * n,
        widths=widths,
        gp_x=gps,
        dy=[0] * n,
        lower=[0] * n,
        upper=[10 * n - w for w in widths],
        pairs=[(i, i + 1, widths[i]) for i in range(n - 1)],
    )


def curves_for_insertion(problem, xs, split, target_width=2):
    """MGL curves for inserting a target between cells split-1 and split."""
    curves = []
    # Right side: cells split..n-1, chain offsets from the target.
    offset = target_width
    for k in range(split, len(xs)):
        curves.append(
            DisplacementCurve.pushed_right(xs[k], problem.gp_x[k], offset)
        )
        offset += problem.widths[k]
    # Left side: cells split-1..0.
    offset = 0
    for k in range(split - 1, -1, -1):
        offset += problem.widths[k]
        curves.append(
            DisplacementCurve.pushed_left(xs[k], problem.gp_x[k], offset)
        )
    return curves


def is_convex_on(curve: DisplacementCurve, lo: float, hi: float) -> bool:
    """Convexity restricted to [lo, hi] (slopes non-decreasing there)."""
    if hi <= lo:
        return True
    xs = [lo] + [x for x, _ in curve.breakpoints if lo < x < hi] + [hi]
    values = [curve.value(x) for x in xs]
    slopes = [
        (b - a) / (x2 - x1)
        for a, b, x1, x2 in zip(values, values[1:], xs, xs[1:])
    ]
    return all(b >= a - 1e-9 for a, b in zip(slopes, slopes[1:]))


class TestTheorem1:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 12))
    def test_sum_convex_at_optimal_positions(self, seed, n):
        """Convexity on the *feasible* insertion interval.

        Outside it the curves model pushes that would violate the row
        bounds, where convexity need not (and does not) hold.
        """
        rng = random.Random(seed)
        problem = build_row(rng, n)
        xs = solve_mcf(problem, 0)  # the Theorem's precondition
        split = rng.randint(0, n)
        target_width = 2
        lo = sum(problem.widths[:split])  # left chain fully compressed
        hi = (10 * n - target_width) - sum(problem.widths[split:])
        total = sum_curves(
            curves_for_insertion(problem, xs, split, target_width)
        )
        assert is_convex_on(total, lo, hi), (seed, n, split)

    def test_nonoptimal_positions_can_break_convexity(self):
        """The precondition matters: a deliberately bad placement yields a
        non-convex sum (two type-C cells with separated dips)."""
        curves = [
            DisplacementCurve.pushed_right(0, 30, 2),   # far left of GP
            DisplacementCurve.pushed_right(5, 100, 4),  # far left of GP
        ]
        total = sum_curves(curves)
        # Two separated type-C dips make the slope decrease somewhere
        # inside the feasible span.
        assert not is_convex_on(total, -10, 120)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_breakpoint_evaluation_finds_global_min_anyway(self, seed):
        """Even when convexity fails, evaluating every breakpoint (the
        implementation's choice) finds the global optimum."""
        from repro.core.curves import minimize_over_sites

        rng = random.Random(seed)
        curves = []
        for _ in range(rng.randint(2, 8)):
            cur = rng.uniform(0, 60)
            gp = rng.uniform(0, 60)
            off = rng.uniform(1, 6)
            maker = (
                DisplacementCurve.pushed_right
                if rng.random() < 0.5 else DisplacementCurve.pushed_left
            )
            curves.append(maker(cur, gp, off))
        best = minimize_over_sites(curves, 0, 60)
        total = sum_curves(curves)
        dense = min(total.value(x) for x in range(61))
        assert best[1] == pytest.approx(dense, abs=1e-9)
