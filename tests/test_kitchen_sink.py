"""Kitchen-sink property test: every feature at once, random instances.

Generates small designs exercising fences (multi-rect), blockages,
macros, rails, IO pins, and edge rules simultaneously, runs the full
flow, and asserts the system invariants.  This is the crash-finder that
guards feature interactions.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import LegalizerParams, legalize
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal, contest_score, count_routability_violations


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    density=st.floats(0.35, 0.7),
    fences=st.integers(0, 2),
    blockages=st.integers(0, 2),
    macros=st.integers(0, 2),
    rails=st.booleans(),
)
def test_full_flow_all_features(seed, density, fences, blockages, macros, rails):
    design = generate_design(
        SyntheticSpec(
            name=f"sink{seed}",
            cells_by_height={1: 150, 2: 14, 3: 6},
            density=density,
            seed=seed,
            num_fences=fences,
            multi_rect_fences=True,
            num_blockages=blockages,
            num_macros=macros,
            with_rails=rails,
            num_io_pins=4 if rails else 0,
            with_edge_rules=True,
            nets_per_cell=0.5,
        )
    )
    design.validate()
    result = legalize(design, LegalizerParams(scheduler_capacity=1))

    report = check_legal(result.placement)
    assert report.is_legal, report.summary()

    routability = count_routability_violations(result.placement)
    assert routability.edge_violations == 0  # fillers are exact

    score = contest_score(result.placement)
    assert score.score >= 0

    # Post-processing contract: max displacement never regresses MGL's.
    final = result.after_flow or result.after_matching or result.after_mgl
    assert final.max_disp <= result.after_mgl.max_disp + 1e-9


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_scheduler_capacity_invariance_of_legality(seed):
    design = generate_design(
        SyntheticSpec(
            name=f"cap{seed}",
            cells_by_height={1: 120, 2: 10},
            density=0.6,
            seed=seed,
            num_fences=1,
        )
    )
    for capacity in (1, 3):
        result = legalize(
            design,
            LegalizerParams(routability=False, scheduler_capacity=capacity),
        )
        assert check_legal(result.placement).is_legal
