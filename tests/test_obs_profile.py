"""Span profiles: folding, attribution, exports, and round-trips."""

import json

from repro.core.legalizer import Legalizer
from repro.core.params import LegalizerParams
from repro.obs.profile import (
    ProfileRow,
    SpanProfile,
    diff_profiles,
    fold_spans,
    load_trace_jsonl,
    profile_from_dict,
    render_profile,
)
from repro.obs.tracer import Span, SpanTracer


def make_span(name, start, end, attrs=None, children=(), worker=None):
    span = Span(name, dict(attrs or {}), t_start=start)
    span.t_end = end
    span.children = list(children)
    if worker is not None:
        span.meta["worker"] = worker
    return span


def small_forest():
    """One root (10s): child a (4s, self 3s after its 1s grandchild),
    child b (2s, from worker 0) — root self time 4s."""
    grandchild = make_span("leaf", 1.0, 2.0)
    child_a = make_span("stage_a", 0.5, 4.5, children=[grandchild])
    child_b = make_span("stage_b", 5.0, 7.0, worker=0)
    return [make_span("root", 0.0, 10.0, children=[child_a, child_b])]


class TestFold:
    def test_self_time_subtracts_children(self):
        profile = fold_spans(small_forest())
        assert profile.span_count == 4
        assert profile.total_seconds == 10.0
        assert profile.kinds["root"].self_seconds == 4.0
        assert profile.kinds["stage_a"].self_seconds == 3.0
        assert profile.kinds["stage_a"].total_seconds == 4.0
        assert profile.kinds["leaf"].self_seconds == 1.0
        # Self times sum back to the walltime of the forest.
        assert sum(
            row.self_seconds for row in profile.kinds.values()
        ) == profile.total_seconds

    def test_self_time_clamps_at_zero(self):
        # Merged worker spans can overrun the parent's recorded window.
        child = make_span("inner", 0.0, 5.0)
        parent = make_span("outer", 0.0, 3.0, children=[child])
        profile = fold_spans([parent])
        assert profile.kinds["outer"].self_seconds == 0.0

    def test_worker_attribution_reads_meta(self):
        profile = fold_spans(small_forest())
        assert profile.by_worker["w0"] == {"stage_b": 2.0}
        assert "stage_b" not in profile.by_worker["main"]

    def test_shard_attribution_follows_enclosing_shard_span(self):
        inner = make_span("evaluate", 1.0, 2.0)
        shard = make_span(
            "shard", 0.0, 3.0, attrs={"index": 2}, children=[inner]
        )
        reconcile = make_span("reconcile", 3.0, 4.0)
        root = make_span(
            "shard_mgl", 0.0, 5.0, children=[shard, reconcile]
        )
        profile = fold_spans([root])
        assert profile.by_shard["shard2"] == {"shard": 2.0, "evaluate": 1.0}
        assert profile.by_shard["reconcile"] == {"reconcile": 1.0}
        assert "shard_mgl" in profile.by_shard["-"]

    def test_collapsed_stacks_are_path_keyed_microseconds(self):
        profile = fold_spans(small_forest())
        assert profile.collapsed["root"] == 4.0
        assert profile.collapsed["root;stage_a;leaf"] == 1.0
        text = profile.collapsed_stacks()
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().split("\n")
        )
        assert lines["root;stage_a"] == str(round(3.0 * 1e6))
        # Sorted by path, newline-terminated: diff- and flamegraph-safe.
        assert list(lines) == sorted(lines)
        assert text.endswith("\n")
        assert SpanProfile().collapsed_stacks() == ""


class TestRoundTrips:
    def test_as_dict_profile_from_dict_round_trip(self):
        profile = fold_spans(small_forest())
        clone = profile_from_dict(
            json.loads(json.dumps(profile.as_dict()))
        )
        assert clone.as_dict() == profile.as_dict()
        assert clone.span_count == profile.span_count
        assert clone.kinds["stage_a"].self_seconds == 3.0

    def test_profile_from_dict_tolerates_garbage(self):
        profile = profile_from_dict(
            {"span_count": "x", "kinds": {"a": 3}, "by_worker": []}
        )
        assert profile.span_count == 0
        assert profile.kinds == {}

    def test_load_trace_jsonl_rebuilds_the_tracer_forest(
        self, small_design, tmp_path
    ):
        tracer = SpanTracer(sample_every=4)
        Legalizer(
            small_design, LegalizerParams(routability=False), tracer=tracer
        ).run()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        roots = load_trace_jsonl(str(path))
        reloaded = fold_spans(roots)
        direct = fold_spans(tracer.roots)
        assert reloaded.span_count == direct.span_count
        assert set(reloaded.kinds) == set(direct.kinds)
        for kind, row in direct.kinds.items():
            assert reloaded.kinds[kind].count == row.count

    def test_load_trace_jsonl_skips_non_span_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"event": "span", "name": "a", "depth": 0,
                        "attrs": {}, "t_start": 0.0, "t_end": 1.0}) + "\n"
            + json.dumps({"event": "metric", "name": "x"}) + "\n"
            + "\n"
        )
        roots = load_trace_jsonl(str(path))
        assert [root.name for root in roots] == ["a"]


class TestRendering:
    def test_render_orders_kinds_by_self_time(self):
        text = render_profile(fold_spans(small_forest()), title="t")
        lines = text.split("\n")
        assert lines[0] == "t"
        assert "span profile: 4 spans, 10.000s total" in lines[1]
        kinds = [line.split()[0] for line in lines[3:7]]
        assert kinds == ["root", "stage_a", "stage_b", "leaf"]
        # Two workers present -> attribution table renders.
        assert "self seconds by worker:" in text
        assert "w0" in text

    def test_diff_reports_deltas_above_threshold(self):
        before = fold_spans(small_forest())
        after = fold_spans(small_forest())
        after.kinds["stage_a"].self_seconds += 1.5
        after.kinds["stage_a"].count += 2
        text = diff_profiles(before, after)
        assert "stage_a" in text
        assert "(+50.0%)" in text
        assert "count 1 -> 3 (+2)" in text
        assert "root" not in text.split("span profile delta")[1].split(
            "\n", 2
        )[2]

    def test_diff_of_identical_profiles_is_quiet(self):
        profile = fold_spans(small_forest())
        assert "no per-kind changes" in diff_profiles(profile, profile)

    def test_diff_handles_new_kinds(self):
        before = SpanProfile()
        after = SpanProfile()
        after.kinds["fresh"] = ProfileRow(
            count=3, total_seconds=1.0, self_seconds=1.0
        )
        text = diff_profiles(before, after)
        assert "fresh" in text and "count 0 -> 3" in text
