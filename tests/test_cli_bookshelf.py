"""CLI tests for the Bookshelf import/export commands."""

import pytest

from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "d.txt"
    assert main([
        "generate", "bs_cli", "-o", str(path),
        "--cells", "1:50", "2:6", "--density", "0.5",
    ]) == 0
    return path


def test_export_then_import(design_file, tmp_path):
    out_dir = tmp_path / "bundle"
    assert main([
        "export-bookshelf", str(design_file), "-o", str(out_dir),
    ]) == 0
    aux = out_dir / "bs_cli.aux"
    assert aux.exists()

    reimported = tmp_path / "back.txt"
    assert main([
        "import-bookshelf", str(aux), "-o", str(reimported),
    ]) == 0
    from repro.io import load_design

    original = load_design(design_file)
    loaded = load_design(reimported)
    assert loaded.num_cells == original.num_cells
    assert loaded.num_rows == original.num_rows


def test_export_with_placement(design_file, tmp_path):
    placement_file = tmp_path / "p.txt"
    assert main([
        "legalize", str(design_file), "-o", str(placement_file),
        "--no-routability",
    ]) == 0
    out_dir = tmp_path / "bundle"
    assert main([
        "export-bookshelf", str(design_file), "-o", str(out_dir),
        "--placement", str(placement_file),
    ]) == 0
    pl_text = (out_dir / "bs_cli.pl").read_text()
    assert "UCLA pl" in pl_text


def test_import_with_placement_output(design_file, tmp_path):
    out_dir = tmp_path / "bundle"
    main(["export-bookshelf", str(design_file), "-o", str(out_dir)])
    placement_out = tmp_path / "imported.pl.txt"
    assert main([
        "import-bookshelf", str(out_dir / "bs_cli.aux"),
        "-o", str(tmp_path / "x.txt"),
        "--placement", str(placement_out),
    ]) == 0
    assert placement_out.exists()
