"""Tests for the batch-capacity advice over scheduler occupancy traces."""

import math

import pytest

from repro.obs.autotune import (
    advice_for_run,
    band_advice_for_run,
    suggest_capacity,
    suggest_shard_bands,
)


def profile_with(counts, bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)):
    return {
        "histograms": {
            "scheduler.batch_occupancy": {
                "bounds": list(bounds),
                "counts": list(counts),
                "count": sum(counts),
                "sum": 0.0,
                "mean": 0.0,
            }
        }
    }


class TestSuggestCapacity:
    def test_saturated_batches_raise_capacity(self):
        # Capacity 8; most batches land in the (4, 8] bucket, i.e. at or
        # above 0.75 * 8 = 6 by lower-edge accounting... lower edge 4 is
        # below 6, so saturation must come from buckets at/after lower
        # edge 8: put the mass in (8, 16].
        profile = profile_with([1, 0, 1, 0, 18, 0, 0, 0])
        advice = suggest_capacity(profile, 8)
        assert advice is not None
        assert advice.full_fraction == 0.9
        assert advice.suggested == 16
        assert advice.changed
        assert "--capacity 16" in advice.render()

    def test_sparse_batches_lower_capacity(self):
        # Capacity 32, but p95 of the occupancy sits at <=2.
        profile = profile_with([30, 60, 5, 0, 0, 0, 0, 0])
        advice = suggest_capacity(profile, 32)
        assert advice is not None
        assert advice.p95 == 4.0  # 95 of 95 need the third bucket's bound
        assert advice.suggested == 4
        assert "shrinks conflict re-evaluation" in advice.rationale

    def test_tracking_keeps_capacity(self):
        # Capacity 8 with occupancy spread under it: neither saturated
        # (no mass at lower edge >= 6) nor sparse (p95 above 4).
        profile = profile_with([2, 2, 6, 10, 0, 0, 0, 0])
        advice = suggest_capacity(profile, 8)
        assert advice is not None
        assert not advice.changed
        assert advice.suggested == 8
        assert "looks right" in advice.render()

    def test_serial_run_is_left_alone(self):
        profile = profile_with([10, 0, 0, 0, 0, 0, 0, 0])
        advice = suggest_capacity(profile, 1)
        assert advice is not None
        assert advice.suggested == 1
        assert "serial" in advice.rationale

    def test_overflow_bucket_counts_as_full(self):
        # All mass beyond the last bound: lower edge 64 >= any capacity.
        profile = profile_with([0, 0, 0, 0, 0, 0, 0, 12])
        advice = suggest_capacity(profile, 64)
        assert advice is not None
        assert advice.full_fraction == 1.0
        assert advice.suggested == 128
        assert advice.p50 == math.inf

    def test_missing_histogram_returns_none(self):
        assert suggest_capacity({}, 8) is None
        assert suggest_capacity({"histograms": {}}, 8) is None
        empty = profile_with([0, 0, 0, 0, 0, 0, 0, 0])
        assert suggest_capacity(empty, 8) is None

    def test_malformed_counts_return_none(self):
        profile = profile_with([1, 2, 3])  # counts shorter than bounds+1
        assert suggest_capacity(profile, 8) is None


class TestAdviceForRun:
    def test_reads_capacity_from_manifest_params(self):
        profile = profile_with([30, 60, 5, 0, 0, 0, 0, 0])
        manifest = {"params": {"scheduler_capacity": 32}}
        advice = advice_for_run(profile, manifest)
        assert advice is not None
        assert advice.current == 32
        assert advice.suggested == 4

    def test_absent_pieces_return_none(self):
        profile = profile_with([1, 0, 0, 0, 0, 0, 0, 0])
        assert advice_for_run(None, {"params": {}}) is None
        assert advice_for_run(profile, None) is None
        assert advice_for_run(profile, {}) is None
        assert advice_for_run(profile, {"params": {}}) is None
        assert (
            advice_for_run(profile, {"params": {"scheduler_capacity": "8"}})
            is None
        )


def shard_profile(count=12):
    return {
        "histograms": {
            "shard.occupancy": {
                "bounds": [64.0, 256.0, 1024.0],
                "counts": [0, count, 0, 0],
                "count": count,
                "sum": 0.0,
                "mean": 0.0,
            }
        }
    }


def topology(populations, halo_rows=2):
    return {
        "halo_rows": halo_rows,
        "bands": [
            {"index": i, "cells": cells}
            for i, cells in enumerate(populations)
        ],
    }


class TestSuggestShardBands:
    def test_balanced_bands(self):
        advice = suggest_shard_bands(
            shard_profile(), topology([100, 110, 95, 105])
        )
        assert advice is not None
        assert advice.balanced and advice.shards == 4
        assert advice.max_cells == 110 and advice.min_cells == 95
        assert "look balanced" in advice.render()
        assert "split the work evenly" in advice.rationale

    def test_imbalanced_topology_is_called_out(self):
        # Widest band at 2.29x the mean (>= 1.5 threshold).
        advice = suggest_shard_bands(
            shard_profile(), topology([400, 50, 50, 200])
        )
        assert advice is not None
        assert not advice.balanced
        assert advice.imbalance == pytest.approx(400 / 175)
        assert "IMBALANCED" in advice.render()
        assert "bounds the sharded wall clock" in advice.rationale

    def test_single_band_is_balanced_by_definition(self):
        advice = suggest_shard_bands(shard_profile(), topology([500]))
        assert advice is not None
        assert advice.balanced and advice.shards == 1
        assert "sharding is effectively off" in advice.rationale

    def test_unsharded_run_returns_none(self):
        # No shard.occupancy samples: the run never sharded.
        assert suggest_shard_bands({}, topology([100, 100])) is None
        empty = shard_profile(count=0)
        empty["histograms"]["shard.occupancy"]["counts"] = [0, 0, 0, 0]
        assert suggest_shard_bands(empty, topology([100, 100])) is None
        # Sharded profile but no band populations in the manifest.
        assert suggest_shard_bands(shard_profile(), {"bands": []}) is None


class TestBandAdviceForRun:
    def test_reads_topology_from_manifest(self):
        manifest = {"shard_topology": topology([100, 100], halo_rows=3)}
        advice = band_advice_for_run(shard_profile(), manifest)
        assert advice is not None
        assert advice.halo_rows == 3

    def test_absent_pieces_return_none(self):
        assert band_advice_for_run(None, {}) is None
        assert band_advice_for_run(shard_profile(), None) is None
        assert band_advice_for_run(shard_profile(), {}) is None
