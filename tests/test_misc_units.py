"""Small unit tests for corners not covered elsewhere."""

import pytest

from repro.baselines.tetris import _intersect_spans
from repro.core.occupancy import Occupancy
from repro.flow.graph import FlowGraph
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


class TestIntersectSpans:
    def test_basic_intersection(self):
        a = [(0, 10), (20, 30)]
        b = [(5, 25)]
        assert _intersect_spans(a, b, width=2) == [(5, 10), (20, 25)]

    def test_width_filter(self):
        a = [(0, 10)]
        b = [(8, 12)]
        assert _intersect_spans(a, b, width=3) == []
        assert _intersect_spans(a, b, width=2) == [(8, 10)]

    def test_empty_inputs(self):
        assert _intersect_spans([], [(0, 5)], 1) == []
        assert _intersect_spans([(0, 5)], [], 1) == []

    def test_unsorted_inputs(self):
        a = [(20, 30), (0, 10)]
        b = [(5, 25)]
        assert _intersect_spans(a, b, width=1) == [(5, 10), (20, 25)]


class TestOccupancySameX:
    def test_cells_at_same_x_in_shared_row(self, basic_tech):
        """Multi-row cells in different start rows can share (row, x)...
        they cannot overlap, but two cells may sit at the same x in
        *different* rows; within one row the index must stay stable."""
        design = Design(basic_tech, num_rows=6, num_sites=20, name="samex")
        a = design.add_cell("a", basic_tech.type_named("S2"), 0, 0)
        b = design.add_cell("b", basic_tech.type_named("S2"), 0, 1)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        placement.move(a, 5, 0)
        occupancy.add(a)
        placement.move(b, 5, 1)
        occupancy.add(b)
        assert occupancy.row_cells(0) == [a]
        assert occupancy.row_cells(1) == [b]
        occupancy.remove(a)
        assert occupancy.row_cells(0) == []


class TestFlowGraphSupply:
    def test_add_supply_accumulates(self):
        graph = FlowGraph()
        node = graph.add_node(supply=1)
        graph.add_supply(node, 2)
        graph.add_supply(node, -4)
        assert graph.supplies[node] == -1


class TestPlacementSnapshotAll:
    def test_snapshot_none_covers_everything(self, small_design):
        placement = Placement(small_design)
        placement.move(0, 4, 4)
        states = placement.snapshot()
        assert len(states) == small_design.num_cells
        placement.move(0, 9, 9)
        placement.restore(states)
        assert placement.position(0) == (4, 4)


class TestScoreHpwlBefore:
    def test_gp_hpwl_uses_centers(self, basic_tech):
        from repro.checker.score import gp_hpwl
        from repro.model.netlist import Net, PinRef

        design = Design(basic_tech, num_rows=4, num_sites=40, name="h")
        design.add_cell("a", basic_tech.type_named("S2"), 0.0, 0.0)
        design.add_cell("b", basic_tech.type_named("S2"), 10.0, 0.0)
        design.netlist.add_net(Net("n", [PinRef(0), PinRef(1)]))
        # Centers differ by 10 sites * 0.2 = 2.0 length units in x only.
        assert gp_hpwl(design) == pytest.approx(2.0)


class TestQuadraticSpreadEdge:
    def test_empty_input(self):
        import numpy as np

        from repro.gp.quadratic import _percentile_spread

        result = _percentile_spread(np.array([]), 10.0)
        assert len(result) == 0


class TestVizText:
    def test_text_element(self):
        from repro.viz.svg import _SvgBuilder

        svg = _SvgBuilder(100, 50)
        svg.text(5, 10, "hello")
        assert "hello" in svg.render()
