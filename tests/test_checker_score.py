"""Tests for S_am, max displacement, HPWL, and the contest score (Eq. 10)."""

import pytest

from repro.checker.score import (
    DELTA,
    average_displacement,
    contest_score,
    gp_hpwl,
    max_displacement,
)
from repro.model.design import Design
from repro.model.netlist import Net, PinRef
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


@pytest.fixture
def mixed_design():
    tech = Technology(cell_types=[CellType("S", 2, 1), CellType("D", 2, 2)])
    design = Design(tech, num_rows=8, num_sites=40, name="score")
    # Two singles, one double; GPs at integer sites.
    design.add_cell("s1", tech.type_named("S"), 0.0, 0.0)
    design.add_cell("s2", tech.type_named("S"), 10.0, 0.0)
    design.add_cell("d1", tech.type_named("D"), 20.0, 2.0)
    return design


class TestAverageDisplacement:
    def test_height_weighted_mean(self, mixed_design):
        placement = Placement.from_gp_rounded(mixed_design)
        # Move s1 by 10 sites (=1 row unit) and d1 by 2 rows.
        placement.move(0, 10, 0)
        placement.move(2, 20, 4)
        # S_am = mean over heights of per-height means:
        # height 1: (1.0 + 0)/2 = 0.5 ; height 2: 2.0 ; S_am = 1.25.
        assert average_displacement(placement) == pytest.approx(1.25)

    def test_empty_zero(self, basic_tech):
        design = Design(basic_tech, num_rows=2, num_sites=10)
        assert average_displacement(Placement(design)) == 0.0

    def test_eq2_differs_from_plain_mean(self, mixed_design):
        placement = Placement.from_gp_rounded(mixed_design)
        placement.move(2, 20, 4)
        plain_mean = sum(
            placement.displacement(c) for c in range(3)
        ) / 3
        assert average_displacement(placement) != pytest.approx(plain_mean)


class TestMaxDisplacement:
    def test_max(self, mixed_design):
        placement = Placement.from_gp_rounded(mixed_design)
        placement.move(0, 30, 0)  # 30 sites = 3 row units
        assert max_displacement(placement) == pytest.approx(3.0)

    def test_ignores_fixed(self, basic_tech):
        design = Design(basic_tech, num_rows=4, num_sites=20)
        design.add_cell("f", basic_tech.type_named("S2"), 0, 0, fixed=True)
        placement = Placement(design)
        placement.move(0, 10, 0)  # illegal but fixed cells are not counted
        assert max_displacement(placement) == 0.0


class TestContestScore:
    def test_score_formula(self, mixed_design):
        mixed_design.netlist.add_net(Net("n", [PinRef(0), PinRef(1)]))
        placement = Placement.from_gp_rounded(mixed_design)
        placement.move(0, 5, 0)
        report = contest_score(placement)
        s_am = average_displacement(placement)
        expected = (
            (1.0 + report.hpwl_ratio + 0.0)
            * (1.0 + report.max_displacement / DELTA)
            * s_am
        )
        assert report.score == pytest.approx(expected)

    def test_violations_inflate_score(self, mixed_design):
        from repro.checker.routability import RoutabilityReport

        placement = Placement.from_gp_rounded(mixed_design)
        placement.move(0, 5, 0)
        clean = contest_score(placement, RoutabilityReport())
        dirty_report = RoutabilityReport(pin_short=3, edge_violations=3)
        dirty = contest_score(placement, dirty_report)
        assert dirty.score > clean.score
        assert dirty.pin_violations == 3
        assert dirty.edge_violations == 3
        # (N_p + N_e)/m with m=3 adds 2.0 to the first factor.
        assert dirty.score / clean.score == pytest.approx(
            (1.0 + clean.hpwl_ratio + 2.0) / (1.0 + clean.hpwl_ratio)
        )

    def test_hpwl_ratio(self, mixed_design):
        mixed_design.netlist.add_net(Net("n", [PinRef(0), PinRef(1)]))
        placement = Placement.from_gp_rounded(mixed_design)
        before = gp_hpwl(mixed_design)
        placement.move(1, 20, 0)  # stretch the net by 10 sites = 2.0 units
        report = contest_score(placement)
        assert report.hpwl_before == pytest.approx(before)
        assert report.hpwl_after == pytest.approx(before + 2.0)
        assert report.hpwl_ratio == pytest.approx(2.0 / before)

    def test_no_nets_ratio_zero(self, mixed_design):
        placement = Placement.from_gp_rounded(mixed_design)
        report = contest_score(placement)
        assert report.hpwl_ratio == 0.0

    def test_row_dict(self, mixed_design):
        placement = Placement.from_gp_rounded(mixed_design)
        row = contest_score(placement).row()
        assert set(row) == {
            "avg_disp", "max_disp", "hpwl", "hpwl_ratio",
            "pin_violations", "edge_violations", "score",
        }
