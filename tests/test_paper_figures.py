"""Direct reproductions of the paper's illustrative figures as tests.

* Fig. 3 — the MLL vs MGL toy: minimizing displacement w.r.t. current
  positions yields total GP displacement 3, w.r.t. GP positions yields 2;
* Fig. 4 — the four displacement-curve types;
* Fig. 5 — the structure of the dual-MCF graph for a 3-cell row pair.
"""

import pytest

from repro.core.curves import DisplacementCurve
from repro.core.flowopt import FixedRowOrderProblem, build_dual_graph, solve_mcf
from repro.core.insertion import InsertionContext
from repro.core.occupancy import Occupancy
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


class TestFigure3:
    """The MLL-vs-MGL mechanism on a one-row toy (the figure's image is
    not recoverable from the text, so we use an equivalent instance).

    Already-legalized cells: c0 at x=0 (GP 1, drifted left) and c1 at x=3
    (GP 4, drifted left); total displacement 2, as in Fig. 3(b).  The
    target wants x=3 — exactly where c1 sits.

    * MGL measures pushes from GP: inserting at x=3 pushes c1 to 4, ONTO
      its GP (a type-C credit), final total displacement 1.
    * MLL measures pushes from current positions: moving c1 costs as much
      as the target yielding at x=2, so it takes the myopic tie and
      leaves c1 stranded: final total displacement 3.
    """

    def build(self):
        tech = Technology(cell_types=[CellType("U", 1, 1)])
        design = Design(tech, num_rows=1, num_sites=7, name="fig3")
        design.add_cell("c0", tech.type_named("U"), 1.0, 0.0)
        design.add_cell("c1", tech.type_named("U"), 4.0, 0.0)
        target = design.add_cell("ct", tech.type_named("U"), 3.0, 0.0)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        for cell, x in [(0, 0), (1, 3)]:
            placement.move(cell, x, 0)
            occupancy.add(cell)
        # x-distance weighs 1 row per site for this toy.
        design.site_width = design.row_height
        return design, placement, occupancy, target

    def total_gp_displacement(self, design, placement):
        return sum(
            abs(placement.x[c] - design.gp_x[c]) for c in range(3)
        )

    def run_reference(self, reference):
        design, placement, occupancy, target = self.build()
        context = InsertionContext(
            design, occupancy, target, design.chip_rect, reference=reference
        )
        best = None
        for bottom_row, gaps in context.enumerate_insertion_points():
            result = context.evaluate(bottom_row, gaps)
            if result is None:
                continue
            if best is None or result.sort_key() < best.sort_key():
                best = result
        assert best is not None
        for cell, new_x in best.moves:
            occupancy.update_x(cell, new_x)
        placement.move(target, best.x, best.y)
        return self.total_gp_displacement(design, placement)

    def test_starting_displacement_is_two(self):
        design, placement, _occ, _t = self.build()
        assert sum(abs(placement.x[c] - design.gp_x[c]) for c in range(2)) == 2

    def test_mgl_beats_mll_on_the_toy(self):
        mll_total = self.run_reference("current")
        mgl_total = self.run_reference("gp")
        assert mgl_total == 1  # target at GP, c1 pushed onto its GP
        assert mll_total == 3  # myopic choice strands c1 and the target
        assert mgl_total < mll_total  # the Fig. 3 claim


class TestFigure4:
    """All four local-cell curve types plus their breakpoints."""

    def test_all_types_constructible(self):
        cases = {
            "A": DisplacementCurve.pushed_right(current_x=5, gp_x=3, offset=2),
            "B": DisplacementCurve.pushed_left(current_x=5, gp_x=8, offset=2),
            "C": DisplacementCurve.pushed_right(current_x=5, gp_x=9, offset=2),
            "D": DisplacementCurve.pushed_left(current_x=5, gp_x=2, offset=2),
        }
        for expected, curve in cases.items():
            assert curve.curve_type() == expected

    def test_critical_positions(self):
        """Type A/B breakpoints are MLL's critical positions; C/D add a
        second breakpoint derived from the GP location."""
        a = DisplacementCurve.pushed_right(5, 3, 2)
        assert [x for x, _ in a.breakpoints] == [3]  # current - offset
        c = DisplacementCurve.pushed_right(5, 9, 2)
        assert [x for x, _ in c.breakpoints] == [3, 7]  # + (gp - offset)
        d = DisplacementCurve.pushed_left(5, 2, 2)
        assert [x for x, _ in d.breakpoints] == [4, 7]  # gp+off, current+off

    def test_type_c_minimum_at_gp_alignment(self):
        curve = DisplacementCurve.pushed_right(5, 9, 2)
        assert curve.value(7) == 0.0
        assert curve.value(6) > 0 and curve.value(8) > 0


class TestFigure5:
    """Three cells (c1, c2 single-row; c3 double-row) on two rows.

    The figure's graph: one node per cell plus v_z (and v_p/v_n with the
    extension); boundary edges f_l/f_r, neighbor edges f_13/f_23 (c3 is
    the right neighbor of c1 on row 1 and of c2 on row 2), and the
    absolute-value pairs f+/f-.
    """

    def problem(self):
        return FixedRowOrderProblem(
            cells=[0, 1, 2],
            weights=[1, 1, 1],
            widths=[2, 2, 2],
            gp_x=[1, 2, 6],
            dy=[0, 0, 0],
            lower=[0, 0, 0],
            upper=[8, 8, 8],
            pairs=[(0, 2, 2), (1, 2, 2)],  # f_13 and f_23
        )

    def test_graph_shape_without_extension(self):
        graph, v_z = build_dual_graph(self.problem(), n0=0)
        assert graph.num_nodes == 4  # 3 cells + v_z  (m + 1, paper §3.3)
        # Per cell: f+, f-, f_l, f_r = 12 edges; plus 2 neighbor edges.
        assert graph.num_edges == 14

    def test_graph_shape_with_extension(self):
        graph, v_z = build_dual_graph(self.problem(), n0=2)
        assert graph.num_nodes == 6  # + v_p, v_n
        # + f_i^p, f_i^n per cell and the f^p, f^n arcs.
        assert graph.num_edges == 14 + 6 + 2

    def test_edge_costs_match_formulation(self):
        from repro.flow.graph import edges_by_name

        problem = self.problem()
        graph, _ = build_dual_graph(problem, n0=2)
        names = edges_by_name(graph)
        assert graph.edges[names["f+0"]].cost == 1    # x'_1
        assert graph.edges[names["f-0"]].cost == -1   # -x'_1
        assert graph.edges[names["fl0"]].cost == 0    # -l_1
        assert graph.edges[names["fr0"]].cost == 8    # r_1
        assert graph.edges[names["fe0_2"]].cost == -2  # -(w_1 + gap)
        assert graph.edges[names["fp0"]].cost == 1    # x'_1 - dy_1
        assert graph.edges[names["fn0"]].cost == -1   # -x'_1 - dy_1
        assert graph.edges[names["fP"]].capacity == 2  # n_0
        assert graph.edges[names["fN"]].capacity == 2

    def test_solution_recovers_positions(self):
        problem = self.problem()
        xs = solve_mcf(problem, 0)
        # All cells fit at their GP targets here.
        assert xs == [1, 2, 6]
        assert problem.check_feasible(xs) == []
