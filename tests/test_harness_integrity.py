"""Integrity of the benchmark harness and example scripts.

These guard the deliverables themselves: every bench module must be
collectable by pytest (the `bench_*.py` pattern is configured in
pyproject), and every example script must at least compile.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


def test_benchmarks_collect():
    result = subprocess.run(
        [sys.executable, "-m", "pytest", str(ROOT / "benchmarks"),
         "--collect-only", "-q"],
        capture_output=True, text=True, cwd=ROOT,
    )
    assert result.returncode == 0, result.stdout[-2000:]
    # Every table/figure module contributes at least one test.
    for module in ("bench_table1", "bench_table2", "bench_table3",
                   "bench_fig1", "bench_fig3", "bench_fig4", "bench_fig5",
                   "bench_fig6"):
        assert module in result.stdout, f"{module} not collected"


@pytest.mark.parametrize(
    "script", sorted((ROOT / "examples").glob("*.py")), ids=lambda p: p.name
)
def test_examples_compile(script):
    tree = ast.parse(script.read_text())
    # Each example is a proper script: module docstring + main guard.
    assert ast.get_docstring(tree), f"{script.name} missing docstring"
    assert any(
        isinstance(node, ast.If) for node in tree.body
    ), f"{script.name} missing __main__ guard"


def test_every_bench_module_documents_its_experiment():
    for module in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        tree = ast.parse(module.read_text())
        doc = ast.get_docstring(tree) or ""
        assert len(doc) > 80, f"{module.name} needs a real docstring"


def test_experiments_doc_covers_every_bench():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for module in sorted((ROOT / "benchmarks").glob("bench_*.py")):
        stem = module.stem.replace("bench_", "")
        if stem.startswith("ablation") or stem == "runtime_scaling":
            continue  # grouped under one section
        assert module.name in text or stem in text.lower(), module.name
