"""Unit tests for Placement state and displacement math."""

import numpy as np
import pytest

from repro.model.placement import CellState, Placement


class TestBasics:
    def test_size_mismatch_rejected(self, small_design):
        with pytest.raises(ValueError):
            Placement(small_design, x=[0], y=[0])

    def test_move_and_position(self, small_design):
        placement = Placement(small_design)
        placement.move(0, 7, 3)
        assert placement.position(0) == (7, 3)

    def test_rect(self, small_design):
        placement = Placement(small_design)
        placement.move(0, 10, 4)
        rect = placement.rect(0)
        cell_type = small_design.cell_type_of(0)
        assert rect.xlo == 10 and rect.ylo == 4
        assert rect.width == cell_type.width
        assert rect.height == cell_type.height

    def test_copy_independent(self, small_design):
        a = Placement(small_design)
        b = a.copy()
        b.move(0, 9, 9)
        assert a.position(0) == (0, 0)
        assert a != b

    def test_from_gp_rounded(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        for cell in range(small_design.num_cells):
            assert placement.x[cell] == int(round(small_design.gp_x[cell]))


class TestDisplacement:
    def test_row_height_units(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        cell = 0
        gp_x = small_design.gp_x[cell]
        gp_y = small_design.gp_y[cell]
        placement.move(cell, int(round(gp_x)) + 10, int(round(gp_y)))
        expected = abs(int(round(gp_x)) + 10 - gp_x) * 0.1 + abs(
            int(round(gp_y)) - gp_y
        )
        assert placement.displacement(cell) == pytest.approx(expected)

    def test_vector_matches_scalar(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        placement.move(0, placement.x[0] + 5, placement.y[0] + 1)
        vector = placement.displacements()
        for cell in range(small_design.num_cells):
            assert vector[cell] == pytest.approx(placement.displacement(cell))

    def test_total_displacement_sites(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        # Brute-force the definition: |dx| + |dy| * (row_height/site_width).
        placement.move(0, placement.x[0] + 3, placement.y[0] + 1)
        expected = sum(
            abs(placement.x[c] - small_design.gp_x[c])
            + abs(placement.y[c] - small_design.gp_y[c]) * 10.0
            for c in range(small_design.num_cells)
        )
        assert placement.total_displacement_sites() == pytest.approx(expected)


class TestSnapshot:
    def test_snapshot_restore(self, small_design):
        placement = Placement(small_design)
        placement.move(0, 5, 5)
        saved = placement.snapshot([0, 1])
        placement.move(0, 9, 9)
        placement.move(1, 1, 1)
        placement.restore(saved)
        assert placement.position(0) == (5, 5)
        assert placement.position(1) == (0, 0)

    def test_snapshot_is_immutable_states(self, small_design):
        placement = Placement(small_design)
        state = placement.snapshot([0])[0]
        assert isinstance(state, CellState)
        with pytest.raises(AttributeError):
            state.x = 3  # frozen dataclass


def test_centers_length_units(small_design):
    placement = Placement(small_design)
    placement.move(0, 10, 2)
    cell_type = small_design.cell_type_of(0)
    cx, cy = placement.center_length_units(0)
    assert cx == pytest.approx((10 + cell_type.width / 2) * 0.2)
    assert cy == pytest.approx((2 + cell_type.height / 2) * 2.0)
    assert placement.centers_length_units()[0] == (cx, cy)
