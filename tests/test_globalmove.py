"""Tests for the global-move (rip-up-and-reinsert) extension stage."""

import pytest

from repro import LegalizerParams, legalize
from repro.checker import check_legal
from repro.core.globalmove import optimize_global_moves
from repro.core.mgl import MGLegalizer


def params_plain(**kw):
    return LegalizerParams(routability=False, scheduler_capacity=1, **kw)


class TestGlobalMoves:
    def test_never_worsens_total(self, small_design):
        placement = MGLegalizer(small_design, params_plain()).run()
        stats = optimize_global_moves(placement, params_plain())
        assert stats.disp_after <= stats.disp_before + 1e-9
        assert check_legal(placement).is_legal

    def test_fixes_a_stranded_cell(self, basic_tech):
        """A cell parked far from its GP must be pulled back when space
        exists — the case stages 2 (no same-type partner) and 3 (row
        frozen) cannot fix."""
        from repro.core.occupancy import Occupancy
        from repro.model.design import Design
        from repro.model.placement import Placement

        design = Design(basic_tech, num_rows=8, num_sites=40, name="strand")
        design.add_cell("a", basic_tech.type_named("S3"), 5.0, 1.0)
        stranded = design.add_cell("s", basic_tech.type_named("S4"), 10.0, 1.0)
        placement = Placement(design)
        placement.move(0, 5, 1)
        placement.move(stranded, 30, 6)  # far away, wrong row
        assert check_legal(placement).is_legal
        stats = optimize_global_moves(placement, params_plain(), fraction=1.0)
        assert stats.accepted >= 1
        assert placement.displacement(stranded) < 1.0
        assert check_legal(placement).is_legal

    def test_stats_counters(self, small_design):
        placement = MGLegalizer(small_design, params_plain()).run()
        stats = optimize_global_moves(
            placement, params_plain(), max_rounds=3, fraction=0.1
        )
        assert stats.attempted >= stats.accepted
        assert 1 <= stats.rounds <= 3

    def test_pipeline_integration(self, small_design):
        result = legalize(small_design, params_plain(use_global_moves=True))
        assert result.global_move_stats is not None
        assert result.after_global_moves is not None
        assert check_legal(result.placement).is_legal
        # The extension stage must not regress the flow's output.
        assert (
            result.after_global_moves.avg_disp
            <= result.after_flow.avg_disp + 1e-9
        )

    def test_disabled_by_default(self, small_design):
        result = legalize(small_design, params_plain())
        assert result.global_move_stats is None
        assert result.after_global_moves is None

    def test_deterministic(self, small_design):
        a = MGLegalizer(small_design, params_plain()).run()
        b = a.copy()
        optimize_global_moves(a, params_plain())
        optimize_global_moves(b, params_plain())
        assert a.x == b.x and a.y == b.y
