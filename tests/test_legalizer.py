"""Integration tests for the full three-stage pipeline (paper Fig. 2)."""

import pytest

from repro import Legalizer, LegalizerParams, legalize
from repro.checker import check_legal, contest_score, count_routability_violations


class TestPipeline:
    def test_all_stages_run(self, small_design):
        result = legalize(
            small_design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        assert check_legal(result.placement).is_legal
        assert result.after_matching is not None
        assert result.after_flow is not None
        assert result.matching_stats is not None
        assert result.flow_stats is not None
        assert result.total_seconds > 0

    def test_stages_can_be_disabled(self, small_design):
        result = legalize(
            small_design,
            LegalizerParams(
                routability=False, use_matching=False, use_flow_opt=False,
                scheduler_capacity=1,
            ),
        )
        assert result.after_matching is None
        assert result.after_flow is None
        assert check_legal(result.placement).is_legal

    def test_postprocessing_reduces_displacement(self, small_design):
        """The Table 3 claim: stages 2+3 cut max disp, keep avg steady."""
        result = legalize(
            small_design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        assert result.after_flow.max_disp <= result.after_mgl.max_disp + 1e-9
        # The matching stage may trade a little average for the max; the
        # final stage keeps the total regression small.
        assert result.after_flow.avg_disp <= result.after_mgl.avg_disp * 1.10 + 0.05

    def test_fences_respected_end_to_end(self, fence_design):
        result = legalize(
            fence_design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        report = check_legal(result.placement)
        assert report.is_legal

    def test_routability_flow(self, rail_design):
        params = LegalizerParams(scheduler_capacity=1)
        result = legalize(rail_design, params)
        assert check_legal(result.placement).is_legal
        # The guard steers rows/x away from rails; the violation count
        # must be small on a 40%-dense design.
        report = count_routability_violations(result.placement)
        blind = legalize(
            rail_design,
            LegalizerParams(routability=False, scheduler_capacity=1),
        )
        blind_report = count_routability_violations(blind.placement)
        assert report.total <= blind_report.total

    def test_scoring_integration(self, small_design):
        result = legalize(
            small_design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        score = contest_score(result.placement)
        assert score.score > 0
        assert score.avg_displacement == pytest.approx(
            result.after_flow.avg_disp, abs=0.3
        )

    def test_legalizer_validates_design(self, small_design):
        from repro.model.fence import FenceRegion
        from repro.model.geometry import Rect

        small_design.add_fence(FenceRegion(1, "bad", [Rect(90, 0, 120, 5)]))
        with pytest.raises(ValueError):
            Legalizer(small_design)

    def test_deterministic_end_to_end(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=4)
        a = legalize(small_design, params)
        b = legalize(small_design, params)
        assert a.placement.x == b.placement.x
        assert a.placement.y == b.placement.y
