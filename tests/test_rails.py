"""Unit tests for P/G rail grids and pin short/access queries."""

import pytest
from hypothesis import given, strategies as st

from repro.model.geometry import Interval, Rect
from repro.model.rails import (
    HORIZONTAL,
    IOPin,
    Rail,
    RailGrid,
    VERTICAL,
    standard_pg_grid,
)


def h_rail(layer=2, offset=0.0, pitch=8.0, width=0.5, span=(0.0, 40.0),
           extent=(0.0, 100.0)):
    return Rail(layer, HORIZONTAL, offset, pitch, width,
                Interval(*span), Interval(*extent))


class TestRail:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            h_rail(pitch=0)
        with pytest.raises(ValueError):
            h_rail(width=0)
        with pytest.raises(ValueError):
            Rail(1, "x", 0, 1, 1, Interval(0, 1), Interval(0, 1))

    def test_overlaps_interval_on_stripe(self):
        rail = h_rail()  # stripes at [0, .5), [8, 8.5), [16, 16.5) ...
        assert rail.overlaps_interval(0.2, 0.3)
        assert rail.overlaps_interval(7.9, 8.1)
        assert not rail.overlaps_interval(1.0, 7.9)
        assert not rail.overlaps_interval(8.5, 15.9)

    def test_overlaps_interval_outside_span(self):
        rail = h_rail(span=(0.0, 10.0))
        assert not rail.overlaps_interval(15.9, 16.2)  # stripe beyond span

    def test_empty_interval(self):
        assert not h_rail().overlaps_interval(5.0, 5.0)

    def test_overlaps_rect_respects_extent(self):
        rail = h_rail(extent=(0.0, 50.0))
        assert rail.overlaps_rect(Rect(10, 7.9, 11, 8.2))
        assert not rail.overlaps_rect(Rect(60, 7.9, 61, 8.2))  # past extent

    def test_stripes_in(self):
        rail = h_rail()
        stripes = list(rail.stripes_in(0.0, 20.0))
        assert stripes == [
            Interval(0.0, 0.5),
            Interval(8.0, 8.5),
            Interval(16.0, 16.5),
        ]

    def test_stripes_in_clipped(self):
        rail = h_rail()
        stripes = list(rail.stripes_in(8.2, 8.4))
        assert stripes == [Interval(8.2, 8.4)]

    @given(
        st.floats(min_value=-20, max_value=20),
        st.floats(min_value=0.1, max_value=10),
        st.floats(min_value=0.05, max_value=5),
        st.floats(min_value=-30, max_value=60),
        st.floats(min_value=0.01, max_value=10),
    )
    def test_property_matches_bruteforce(self, offset, pitch, width, lo, length):
        width = min(width, pitch)
        rail = h_rail(offset=offset, pitch=pitch, width=width,
                      span=(-100.0, 100.0))
        hi = lo + length
        # Brute force over stripe indices.
        import math
        first = math.floor((lo - offset - width) / pitch) - 2
        brute = any(
            (offset + i * pitch) < hi and (offset + i * pitch + width) > lo
            for i in range(first, first + int(length / pitch) + 6)
        )
        assert rail.overlaps_interval(lo, hi) == brute


class TestRailGrid:
    def test_pin_short_and_access(self):
        grid = RailGrid()
        grid.add_rail(h_rail(layer=2))
        pin_on_stripe = Rect(5, 8.0, 5.3, 8.3)
        assert grid.pin_short(pin_on_stripe, 2)
        assert grid.pin_access_blocked(pin_on_stripe, 1)
        assert not grid.pin_short(pin_on_stripe, 1)
        assert not grid.pin_access_blocked(pin_on_stripe, 2)

    def test_io_pin_blocking(self):
        grid = RailGrid()
        grid.add_io_pin(IOPin("io", 3, Rect(1, 1, 2, 2)))
        assert grid.pin_short(Rect(1.5, 1.5, 1.8, 1.8), 3)
        assert grid.pin_access_blocked(Rect(1.5, 1.5, 1.8, 1.8), 2)
        assert not grid.pin_short(Rect(1.5, 1.5, 1.8, 1.8), 2)

    def test_rails_on_and_io_pins_on(self):
        grid = RailGrid()
        grid.add_rail(h_rail(layer=2))
        grid.add_io_pin(IOPin("io", 3, Rect(0, 0, 1, 1)))
        assert len(grid.rails_on(2)) == 1
        assert grid.rails_on(3) == []
        assert len(grid.io_pins_on(3)) == 1

    def test_blocked_x_intervals_vertical(self):
        grid = RailGrid()
        grid.add_rail(
            Rail(3, VERTICAL, offset=2.0, pitch=10.0, width=0.4,
                 span=Interval(0, 100), extent=Interval(0, 50))
        )
        grid.add_io_pin(IOPin("io", 3, Rect(5.0, 1.0, 6.0, 2.0)))
        blocked = grid.blocked_x_intervals(3, 0.5, 1.5, 0.0, 30.0)
        assert (2.0, 2.4) in blocked
        assert (12.0, 12.4) in blocked
        assert (5.0, 6.0) in blocked

    def test_horizontal_blocked(self):
        grid = RailGrid()
        grid.add_rail(h_rail(layer=2))
        assert grid.horizontal_blocked(2, 7.9, 8.1)
        assert not grid.horizontal_blocked(2, 1.0, 7.0)
        assert not grid.horizontal_blocked(3, 7.9, 8.1)


class TestStandardGrid:
    def test_structure(self):
        chip = Rect(0, 0, 100, 40)
        grid = standard_pg_grid(chip, row_height=2.0, m2_pitch_rows=4,
                                m3_pitch=12.0)
        layers = sorted(r.layer for r in grid.rails)
        assert layers == [2, 3]
        m2 = grid.rails_on(2)[0]
        assert m2.orientation == HORIZONTAL
        assert m2.pitch == 8.0
        m3 = grid.rails_on(3)[0]
        assert m3.orientation == VERTICAL
        assert m3.pitch == 12.0

    def test_m2_stripe_every_four_rows(self):
        chip = Rect(0, 0, 100, 40)
        grid = standard_pg_grid(chip, row_height=2.0, m2_pitch_rows=4)
        # A band covering rows 0..1 in y hits the stripe at y=0.
        assert grid.horizontal_blocked(2, 0.0, 0.1)
        assert not grid.horizontal_blocked(2, 2.0, 6.0)
        assert grid.horizontal_blocked(2, 7.9, 8.2)
