"""CLI tests for run artifacts: --trace, --run-dir, and `repro report`."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.txt"
    code = main([
        "generate", "obsdesign", "-o", str(path),
        "--cells", "1:40", "2:6", "--density", "0.45", "--seed", "5",
    ])
    assert code == 0
    return path


def run_legalize(design_file, tmp_path, run_name, *extra):
    run_dir = tmp_path / run_name
    code = main([
        "legalize", str(design_file),
        "-o", str(tmp_path / f"{run_name}.pl"),
        "--no-routability", "--run-dir", str(run_dir), *extra,
    ])
    assert code == 0
    return run_dir


class TestRunDirArtifacts:
    def test_trio_written_and_consistent(self, design_file, tmp_path):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        for name in ("profile.json", "manifest.json", "trace.json",
                     "trace.jsonl"):
            assert (run_dir / name).is_file(), name
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["design"]["name"] == "obsdesign"
        assert manifest["placement_hash"]
        assert manifest["trace_structure_hash"]
        profile = json.loads((run_dir / "profile.json").read_text())
        assert "mgl" in profile["timings"]
        assert any(key.startswith("disp.h") for key in profile["histograms"])

    def test_trace_is_perfetto_loadable(self, design_file, tmp_path):
        trace_path = tmp_path / "out.trace.json"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--trace", str(trace_path),
        ])
        assert code == 0
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events and events[0]["name"] == "legalize"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(event)
        # The manifest sits beside the trace per the sidecar convention.
        sidecar = tmp_path / "out.trace.manifest.json"
        assert json.loads(sidecar.read_text())["trace_structure_hash"]


class TestReportCommand:
    def test_render_single_run(self, design_file, tmp_path, capsys):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out
        assert "obsdesign" in out
        assert "timings" in out
        assert "histograms" in out
        assert "perfetto" in out.lower()

    def test_diff_two_runs(self, design_file, tmp_path, capsys):
        run_a = run_legalize(design_file, tmp_path, "run_a")
        run_b = run_legalize(
            design_file, tmp_path, "run_b", "--capacity", "8"
        )
        capsys.readouterr()
        assert main(["report", str(run_a), str(run_b)]) == 0
        out = capsys.readouterr().out
        assert "manifest diff" in out
        assert "scheduler_capacity" in out

    def test_diff_identical_runs_reports_agreement(
        self, design_file, tmp_path, capsys
    ):
        run_a = run_legalize(design_file, tmp_path, "run_a")
        capsys.readouterr()
        assert main(["report", str(run_a), str(run_a)]) == 0
        out = capsys.readouterr().out
        assert "manifests agree" in out

    def test_missing_run_is_a_warning_not_a_crash(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "warning" in out
        assert "no such run" in out

    def test_more_than_two_runs_rejected(self, tmp_path, capsys):
        code = main(["report", "a", "b", "c"])
        assert code == 2
        err = capsys.readouterr().err
        assert "one run" in err

    def test_bare_profile_path_with_sidecar_manifest(
        self, design_file, tmp_path, capsys
    ):
        profile = tmp_path / "prof.json"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--profile", str(profile),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "obsdesign" in out  # manifest found via sidecar convention
        assert "timings" in out


class TestLoggingContract:
    """Diagnostics go to stderr via logging; results stay on stdout."""

    def test_info_diagnostics_on_stderr(self, design_file, tmp_path, capsys):
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "legalized" in captured.out
        assert "avg disp" in captured.out
        assert "placement written" in captured.err
        assert "placement written" not in captured.out

    def test_log_level_silences_info(self, design_file, tmp_path, capsys):
        code = main([
            "--log-level", "error",
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "legalized" in captured.out  # results unaffected
        assert "placement written" not in captured.err

    def test_generate_logs_instead_of_printing(self, tmp_path, capsys):
        path = tmp_path / "d.txt"
        code = main([
            "generate", "g", "-o", str(path), "--cells", "1:10",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "wrote" in captured.err


def bench_payload(seconds=1.0, placement_hash="aaa111"):
    record = {
        "name": "fft_a_md2", "scale": 0.004, "cells": 136,
        "seconds": seconds, "cells_per_sec": 136 / seconds,
        "insertions_evaluated": 1295, "window_expansions": 0,
        "placement_hash": placement_hash,
    }
    return {
        "suite": "iccad2017_synthetic",
        "scales": [0.004],
        "runs": [record],
        "parallel": {
            "name": "fft_a_md2", "workers": 2, "cpu_count": 1,
            "speedup": 0.97, "hashes_match": True,
        },
        "backend": {
            "name": "fft_a_md2", "vector_vs_scalar": 1.1,
            "stacked_vs_scalar": 1.05, "cpu_count": 1,
            "hashes_match": True, "evals_match": True,
        },
        "hashes": {"fft_a_md2@0.004": placement_hash},
    }


class TestBenchReports:
    """`repro report` recognizes BENCH_mgl.json-shaped files by shape."""

    def test_render_bench_report(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_payload()))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "benchmark suite: iccad2017_synthetic" in out
        assert "fft_a_md2" in out
        assert "vector 1.1x serial" in out
        assert "hashes_match=True" in out

    def test_diff_bench_reports_flags_hash_drift(self, tmp_path, capsys):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text(json.dumps(bench_payload()))
        path_b.write_text(
            json.dumps(bench_payload(seconds=2.0, placement_hash="bbb222"))
        )
        assert main(["report", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "determinism drift" in out
        assert "aaa111 -> bbb222" in out
        assert "wall-time deltas" in out

    def test_diff_identical_bench_reports_agree(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_payload()))
        assert main(["report", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "placement hashes agree" in out

    def test_bench_vs_run_dir_is_a_warning(
        self, design_file, tmp_path, capsys
    ):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(bench_payload()))
        capsys.readouterr()
        assert main(["report", str(bench), str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "nothing comparable" in out


class TestRunDirPrometheus:
    def test_metrics_prom_written_and_scrapeable(
        self, design_file, tmp_path
    ):
        run_dir = run_legalize(design_file, tmp_path, "run_prom")
        text = (run_dir / "metrics.prom").read_text()
        assert "# TYPE repro_mgl_cells_placed_total counter" in text
        assert "repro_mgl_seconds_total" in text
        # Exposition format: every non-comment line is "name value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name

    def test_capacity_run_reports_autotune_advice(
        self, design_file, tmp_path, capsys
    ):
        run_dir = run_legalize(
            design_file, tmp_path, "run_cap", "--capacity", "8"
        )
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "autotune:" in out
        assert "batches" in out


class TestSampledTraceCli:
    def test_sample_every_lands_in_manifest_and_shrinks_trace(
        self, design_file, tmp_path
    ):
        full_dir = run_legalize(design_file, tmp_path, "full")
        thin_dir = run_legalize(
            design_file, tmp_path, "thin", "--sample-every", "4"
        )
        full_manifest = json.loads((full_dir / "manifest.json").read_text())
        thin_manifest = json.loads((thin_dir / "manifest.json").read_text())
        assert full_manifest["trace_sample_every"] == 1
        assert thin_manifest["trace_sample_every"] == 4
        # Sampling is observational: the placement hash never moves.
        assert (
            thin_manifest["placement_hash"]
            == full_manifest["placement_hash"]
        )
        full_lines = (full_dir / "trace.jsonl").read_text().count("\n")
        thin_lines = (thin_dir / "trace.jsonl").read_text().count("\n")
        assert 0 < thin_lines < full_lines

    def test_span_profile_artifacts_written(self, design_file, tmp_path):
        run_dir = run_legalize(design_file, tmp_path, "prof")
        profile = json.loads((run_dir / "span_profile.json").read_text())
        assert profile["span_count"] > 0
        assert "mgl" in profile["kinds"]
        collapsed = (run_dir / "profile.collapsed").read_text()
        assert collapsed.startswith("legalize")
        for line in collapsed.strip().split("\n"):
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 1


class TestProgressCli:
    def test_progress_jsonl_stream(self, design_file, tmp_path):
        stream_path = tmp_path / "progress.jsonl"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--progress", str(stream_path),
        ])
        assert code == 0
        events = [
            json.loads(line)
            for line in stream_path.read_text().strip().split("\n")
        ]
        phases = [e["phase"] for e in events if e["event"] == "phase"]
        assert phases[0] == "mgl" and phases[-1] == "done"
        finals = [
            e for e in events
            if e["event"] == "cells" and e["placed"] == e["total"]
        ]
        assert finals

    def test_progress_does_not_change_the_placement(
        self, design_file, tmp_path
    ):
        quiet = tmp_path / "quiet.pl"
        loud = tmp_path / "loud.pl"
        assert main([
            "legalize", str(design_file), "-o", str(quiet),
            "--no-routability",
        ]) == 0
        assert main([
            "legalize", str(design_file), "-o", str(loud),
            "--no-routability",
            "--progress", str(tmp_path / "events.jsonl"),
            "--sample-every", "8",
        ]) == 0
        assert quiet.read_text() == loud.read_text()

    def test_progress_to_stderr_renders_lines(
        self, design_file, tmp_path, capsys
    ):
        assert main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "phase mgl" in err and "phase done" in err


class TestRunsCli:
    def legalize_into_store(self, design_file, tmp_path, store):
        return main([
            "legalize", str(design_file), "-o", str(tmp_path / "out.pl"),
            "--no-routability", "--store", str(store),
        ])

    def test_store_list_show_trend_round_trip(
        self, design_file, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert self.legalize_into_store(design_file, tmp_path, store) == 0
        capsys.readouterr()

        assert main(["runs", "--store", str(store), "list"]) == 0
        listing = capsys.readouterr().out
        assert "1 runs, 1 keys" in listing
        assert "obsdesign@" in listing

        assert main([
            "runs", "--store", str(store), "show", "000001",
        ]) == 0
        detail = capsys.readouterr().out
        assert "run 000001 (run):" in detail
        assert "counters.insertions_evaluated" in detail
        assert "span profile:" in detail

        assert main(["runs", "--store", str(store), "trend"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_trend_exits_nonzero_on_injected_regression(
        self, design_file, tmp_path, capsys
    ):
        store = tmp_path / "store"
        for _ in range(3):
            assert (
                self.legalize_into_store(design_file, tmp_path, store) == 0
            )
        # Rewrite the history with measurable wall times and inject a
        # slow run: `repro runs trend` must flag it and exit 1.  (The
        # real runs finish in milliseconds, below the gate's
        # min_seconds noise floor.)
        index_path = store / "index.json"
        payload = json.loads(index_path.read_text())
        for record, seconds in zip(payload["runs"], (1.0, 1.02, 0.98)):
            record["seconds"] = seconds
        slow = dict(payload["runs"][-1])
        slow["id"] = "000099"
        slow["seconds"] = 60.0
        payload["runs"].append(slow)
        index_path.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["runs", "--store", str(store), "trend"]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "wall time 60.000s" in out

    def test_show_unknown_id_fails(self, tmp_path, capsys):
        store = tmp_path / "empty-store"
        assert main(["runs", "--store", str(store), "show", "000001"]) == 1
        assert "not found" in capsys.readouterr().out

    def test_trend_on_empty_store_is_clean(self, tmp_path, capsys):
        assert main([
            "runs", "--store", str(tmp_path / "nothing"), "trend",
        ]) == 0
        assert "empty" in capsys.readouterr().out


class TestReportProfileFlag:
    def test_single_run_profile_rendering(
        self, design_file, tmp_path, capsys
    ):
        run_dir = run_legalize(design_file, tmp_path, "prof_a")
        assert main(["report", str(run_dir), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "span profile:" in out
        assert "kind" in out and "self(s)" in out

    def test_profile_diff_between_two_runs(
        self, design_file, tmp_path, capsys
    ):
        run_a = run_legalize(design_file, tmp_path, "diff_a")
        run_b = run_legalize(
            design_file, tmp_path, "diff_b", "--sample-every", "6"
        )
        assert main([
            "report", str(run_a), str(run_b), "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "span profile delta (after - before):" in out
        # Sampling drops per-cell spans, so the count delta is negative.
        assert "window" in out

    def test_prometheus_deltas_render_in_diff(
        self, design_file, tmp_path, capsys
    ):
        run_a = run_legalize(design_file, tmp_path, "prom_a")
        run_b = run_legalize(design_file, tmp_path, "prom_b")
        assert main(["report", str(run_a), str(run_b)]) == 0
        out = capsys.readouterr().out
        assert "prometheus series deltas (metrics.prom)" in out

    def test_profile_flag_without_artifacts_fails(self, tmp_path, capsys):
        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "manifest.json").write_text(json.dumps({
            "design": {"name": "x", "cells": 1}, "params": {},
        }))
        assert main(["report", str(bare), "--profile"]) == 1


class TestJsonLogFormatCli:
    def test_legalize_diagnostics_as_json_lines(
        self, design_file, tmp_path, capsys
    ):
        assert main([
            "--log-format", "json",
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ]) == 0
        err_lines = [
            line for line in capsys.readouterr().err.strip().split("\n")
            if line
        ]
        records = [json.loads(line) for line in err_lines]
        assert all({"level", "logger", "message"} <= set(r)
                   for r in records)
        assert any("placement written" in r["message"] for r in records)
