"""CLI tests for run artifacts: --trace, --run-dir, and `repro report`."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.txt"
    code = main([
        "generate", "obsdesign", "-o", str(path),
        "--cells", "1:40", "2:6", "--density", "0.45", "--seed", "5",
    ])
    assert code == 0
    return path


def run_legalize(design_file, tmp_path, run_name, *extra):
    run_dir = tmp_path / run_name
    code = main([
        "legalize", str(design_file),
        "-o", str(tmp_path / f"{run_name}.pl"),
        "--no-routability", "--run-dir", str(run_dir), *extra,
    ])
    assert code == 0
    return run_dir


class TestRunDirArtifacts:
    def test_trio_written_and_consistent(self, design_file, tmp_path):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        for name in ("profile.json", "manifest.json", "trace.json",
                     "trace.jsonl"):
            assert (run_dir / name).is_file(), name
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["design"]["name"] == "obsdesign"
        assert manifest["placement_hash"]
        assert manifest["trace_structure_hash"]
        profile = json.loads((run_dir / "profile.json").read_text())
        assert "mgl" in profile["timings"]
        assert any(key.startswith("disp.h") for key in profile["histograms"])

    def test_trace_is_perfetto_loadable(self, design_file, tmp_path):
        trace_path = tmp_path / "out.trace.json"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--trace", str(trace_path),
        ])
        assert code == 0
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events and events[0]["name"] == "legalize"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(event)
        # The manifest sits beside the trace per the sidecar convention.
        sidecar = tmp_path / "out.trace.manifest.json"
        assert json.loads(sidecar.read_text())["trace_structure_hash"]


class TestReportCommand:
    def test_render_single_run(self, design_file, tmp_path, capsys):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out
        assert "obsdesign" in out
        assert "timings" in out
        assert "histograms" in out
        assert "perfetto" in out.lower()

    def test_diff_two_runs(self, design_file, tmp_path, capsys):
        run_a = run_legalize(design_file, tmp_path, "run_a")
        run_b = run_legalize(
            design_file, tmp_path, "run_b", "--capacity", "8"
        )
        capsys.readouterr()
        assert main(["report", str(run_a), str(run_b)]) == 0
        out = capsys.readouterr().out
        assert "manifest diff" in out
        assert "scheduler_capacity" in out

    def test_diff_identical_runs_reports_agreement(
        self, design_file, tmp_path, capsys
    ):
        run_a = run_legalize(design_file, tmp_path, "run_a")
        capsys.readouterr()
        assert main(["report", str(run_a), str(run_a)]) == 0
        out = capsys.readouterr().out
        assert "manifests agree" in out

    def test_missing_run_is_a_warning_not_a_crash(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "warning" in out
        assert "no such run" in out

    def test_more_than_two_runs_rejected(self, tmp_path, capsys):
        code = main(["report", "a", "b", "c"])
        assert code == 2
        err = capsys.readouterr().err
        assert "one run" in err

    def test_bare_profile_path_with_sidecar_manifest(
        self, design_file, tmp_path, capsys
    ):
        profile = tmp_path / "prof.json"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--profile", str(profile),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "obsdesign" in out  # manifest found via sidecar convention
        assert "timings" in out


class TestLoggingContract:
    """Diagnostics go to stderr via logging; results stay on stdout."""

    def test_info_diagnostics_on_stderr(self, design_file, tmp_path, capsys):
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "legalized" in captured.out
        assert "avg disp" in captured.out
        assert "placement written" in captured.err
        assert "placement written" not in captured.out

    def test_log_level_silences_info(self, design_file, tmp_path, capsys):
        code = main([
            "--log-level", "error",
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "legalized" in captured.out  # results unaffected
        assert "placement written" not in captured.err

    def test_generate_logs_instead_of_printing(self, tmp_path, capsys):
        path = tmp_path / "d.txt"
        code = main([
            "generate", "g", "-o", str(path), "--cells", "1:10",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "wrote" in captured.err
