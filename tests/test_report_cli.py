"""CLI tests for run artifacts: --trace, --run-dir, and `repro report`."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.txt"
    code = main([
        "generate", "obsdesign", "-o", str(path),
        "--cells", "1:40", "2:6", "--density", "0.45", "--seed", "5",
    ])
    assert code == 0
    return path


def run_legalize(design_file, tmp_path, run_name, *extra):
    run_dir = tmp_path / run_name
    code = main([
        "legalize", str(design_file),
        "-o", str(tmp_path / f"{run_name}.pl"),
        "--no-routability", "--run-dir", str(run_dir), *extra,
    ])
    assert code == 0
    return run_dir


class TestRunDirArtifacts:
    def test_trio_written_and_consistent(self, design_file, tmp_path):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        for name in ("profile.json", "manifest.json", "trace.json",
                     "trace.jsonl"):
            assert (run_dir / name).is_file(), name
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["design"]["name"] == "obsdesign"
        assert manifest["placement_hash"]
        assert manifest["trace_structure_hash"]
        profile = json.loads((run_dir / "profile.json").read_text())
        assert "mgl" in profile["timings"]
        assert any(key.startswith("disp.h") for key in profile["histograms"])

    def test_trace_is_perfetto_loadable(self, design_file, tmp_path):
        trace_path = tmp_path / "out.trace.json"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--trace", str(trace_path),
        ])
        assert code == 0
        doc = json.loads(trace_path.read_text())
        events = doc["traceEvents"]
        assert events and events[0]["name"] == "legalize"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(event)
        # The manifest sits beside the trace per the sidecar convention.
        sidecar = tmp_path / "out.trace.manifest.json"
        assert json.loads(sidecar.read_text())["trace_structure_hash"]


class TestReportCommand:
    def test_render_single_run(self, design_file, tmp_path, capsys):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out
        assert "obsdesign" in out
        assert "timings" in out
        assert "histograms" in out
        assert "perfetto" in out.lower()

    def test_diff_two_runs(self, design_file, tmp_path, capsys):
        run_a = run_legalize(design_file, tmp_path, "run_a")
        run_b = run_legalize(
            design_file, tmp_path, "run_b", "--capacity", "8"
        )
        capsys.readouterr()
        assert main(["report", str(run_a), str(run_b)]) == 0
        out = capsys.readouterr().out
        assert "manifest diff" in out
        assert "scheduler_capacity" in out

    def test_diff_identical_runs_reports_agreement(
        self, design_file, tmp_path, capsys
    ):
        run_a = run_legalize(design_file, tmp_path, "run_a")
        capsys.readouterr()
        assert main(["report", str(run_a), str(run_a)]) == 0
        out = capsys.readouterr().out
        assert "manifests agree" in out

    def test_missing_run_is_a_warning_not_a_crash(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "warning" in out
        assert "no such run" in out

    def test_more_than_two_runs_rejected(self, tmp_path, capsys):
        code = main(["report", "a", "b", "c"])
        assert code == 2
        err = capsys.readouterr().err
        assert "one run" in err

    def test_bare_profile_path_with_sidecar_manifest(
        self, design_file, tmp_path, capsys
    ):
        profile = tmp_path / "prof.json"
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability", "--profile", str(profile),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["report", str(profile)]) == 0
        out = capsys.readouterr().out
        assert "obsdesign" in out  # manifest found via sidecar convention
        assert "timings" in out


class TestLoggingContract:
    """Diagnostics go to stderr via logging; results stay on stdout."""

    def test_info_diagnostics_on_stderr(self, design_file, tmp_path, capsys):
        code = main([
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "legalized" in captured.out
        assert "avg disp" in captured.out
        assert "placement written" in captured.err
        assert "placement written" not in captured.out

    def test_log_level_silences_info(self, design_file, tmp_path, capsys):
        code = main([
            "--log-level", "error",
            "legalize", str(design_file), "-o", str(tmp_path / "p.pl"),
            "--no-routability",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "legalized" in captured.out  # results unaffected
        assert "placement written" not in captured.err

    def test_generate_logs_instead_of_printing(self, tmp_path, capsys):
        path = tmp_path / "d.txt"
        code = main([
            "generate", "g", "-o", str(path), "--cells", "1:10",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "wrote" in captured.err


def bench_payload(seconds=1.0, placement_hash="aaa111"):
    record = {
        "name": "fft_a_md2", "scale": 0.004, "cells": 136,
        "seconds": seconds, "cells_per_sec": 136 / seconds,
        "insertions_evaluated": 1295, "window_expansions": 0,
        "placement_hash": placement_hash,
    }
    return {
        "suite": "iccad2017_synthetic",
        "scales": [0.004],
        "runs": [record],
        "parallel": {
            "name": "fft_a_md2", "workers": 2, "cpu_count": 1,
            "speedup": 0.97, "hashes_match": True,
        },
        "backend": {
            "name": "fft_a_md2", "vector_vs_scalar": 1.1,
            "stacked_vs_scalar": 1.05, "cpu_count": 1,
            "hashes_match": True, "evals_match": True,
        },
        "hashes": {"fft_a_md2@0.004": placement_hash},
    }


class TestBenchReports:
    """`repro report` recognizes BENCH_mgl.json-shaped files by shape."""

    def test_render_bench_report(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_payload()))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "benchmark suite: iccad2017_synthetic" in out
        assert "fft_a_md2" in out
        assert "vector 1.1x serial" in out
        assert "hashes_match=True" in out

    def test_diff_bench_reports_flags_hash_drift(self, tmp_path, capsys):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text(json.dumps(bench_payload()))
        path_b.write_text(
            json.dumps(bench_payload(seconds=2.0, placement_hash="bbb222"))
        )
        assert main(["report", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "determinism drift" in out
        assert "aaa111 -> bbb222" in out
        assert "wall-time deltas" in out

    def test_diff_identical_bench_reports_agree(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_payload()))
        assert main(["report", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "placement hashes agree" in out

    def test_bench_vs_run_dir_is_a_warning(
        self, design_file, tmp_path, capsys
    ):
        run_dir = run_legalize(design_file, tmp_path, "run_a")
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps(bench_payload()))
        capsys.readouterr()
        assert main(["report", str(bench), str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "nothing comparable" in out


class TestRunDirPrometheus:
    def test_metrics_prom_written_and_scrapeable(
        self, design_file, tmp_path
    ):
        run_dir = run_legalize(design_file, tmp_path, "run_prom")
        text = (run_dir / "metrics.prom").read_text()
        assert "# TYPE repro_mgl_cells_placed_total counter" in text
        assert "repro_mgl_seconds_total" in text
        # Exposition format: every non-comment line is "name value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name

    def test_capacity_run_reports_autotune_advice(
        self, design_file, tmp_path, capsys
    ):
        run_dir = run_legalize(
            design_file, tmp_path, "run_cap", "--capacity", "8"
        )
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "autotune:" in out
        assert "batches" in out
