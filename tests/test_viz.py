"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

from repro.model.placement import Placement
from repro.viz import render_displacement_svg, render_placement_svg


def parse(svg: str):
    return ET.fromstring(svg)


class TestRenderPlacement:
    def test_valid_xml(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        root = parse(render_placement_svg(placement))
        assert root.tag.endswith("svg")

    def test_one_rect_per_cell(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        svg = render_placement_svg(placement, show_rails=False)
        root = parse(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        # background + cells (no fences in small_design)
        assert len(rects) == 1 + small_design.num_cells

    def test_fences_rendered(self, fence_design):
        placement = Placement.from_gp_rounded(fence_design)
        svg = render_placement_svg(placement, show_rails=False)
        assert "#c33" in svg  # fence stroke color

    def test_rails_rendered(self, rail_design):
        placement = Placement.from_gp_rounded(rail_design)
        with_rails = render_placement_svg(placement, show_rails=True)
        without = render_placement_svg(placement, show_rails=False)
        assert len(with_rails) > len(without)

    def test_highlight(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        svg = render_placement_svg(placement, highlight=[0, 1])
        assert svg.count("#e34a33") == 2


class TestRenderDisplacement:
    def test_red_lines_per_cell(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        svg = render_displacement_svg(placement, cells=[0, 1, 2])
        root = parse(svg)
        lines = [
            el for el in root.iter()
            if el.tag.endswith("line") and el.get("stroke") == "#d62728"
        ]
        assert len(lines) == 3

    def test_all_cells_default(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        svg = render_displacement_svg(placement)
        assert svg.count("#d62728") == small_design.num_cells
