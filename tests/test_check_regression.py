"""Tests for benchmarks/check_regression.py: gates, warnings, deltas."""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_regression", ROOT / "benchmarks" / "check_regression.py"
)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def make_run(name, scale=0.004, seconds=1.0, evals=100, expansions=5,
             hit_rate=0.25, placement_hash="aaaa"):
    return {
        "name": name,
        "scale": scale,
        "cells": 100,
        "seconds": seconds,
        "insertions_evaluated": evals,
        "window_expansions": expansions,
        "gap_cache_hit_rate": hit_rate,
        "placement_hash": placement_hash,
    }


def make_report(runs, parallel=None, trace=None):
    return {
        "suite": "test",
        "runs": runs,
        "parallel": parallel,
        "trace_determinism": trace,
        "hashes": {
            f"{r['name']}@{r['scale']}": r["placement_hash"] for r in runs
        },
    }


def run_main(tmp_path, baseline, fresh, *extra):
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return check_regression.main(
        [str(base_path), str(fresh_path), *extra]
    )


class TestHashGate:
    def test_clean_when_identical(self, tmp_path, capsys):
        report = make_report([make_run("a"), make_run("b")])
        assert run_main(tmp_path, report, report) == 0
        assert "regression gate clean" in capsys.readouterr().out

    def test_hash_change_is_fatal(self, tmp_path, capsys):
        baseline = make_report([make_run("a", placement_hash="aaaa")])
        fresh = make_report([make_run("a", placement_hash="bbbb")])
        assert run_main(tmp_path, baseline, fresh) == 1
        err = capsys.readouterr().err
        assert "placement hash changed" in err

    def test_no_common_cases_is_fatal(self, tmp_path):
        baseline = make_report([make_run("a")])
        fresh = make_report([make_run("z")])
        assert run_main(tmp_path, baseline, fresh) == 1


class TestOneSidedWarnings:
    def test_subset_fresh_run_warns_but_passes(self, tmp_path, capsys):
        baseline = make_report([make_run("a"), make_run("b"), make_run("c")])
        fresh = make_report([make_run("a")])
        assert run_main(tmp_path, baseline, fresh) == 0
        err = capsys.readouterr().err
        assert "WARNING" in err
        assert "2 baseline case(s) missing from the fresh report" in err
        assert "b@0.004" in err

    def test_extra_fresh_cases_warn_too(self, tmp_path, capsys):
        baseline = make_report([make_run("a")])
        fresh = make_report([make_run("a"), make_run("new")])
        assert run_main(tmp_path, baseline, fresh) == 0
        err = capsys.readouterr().err
        assert "1 fresh case(s) absent from the baseline" in err
        assert "new@0.004" in err


class TestCounterDeltas:
    def test_unchanged_counters_report_none(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        run_main(tmp_path, report, report)
        assert "counter deltas on common cases: none" in (
            capsys.readouterr().out
        )

    def test_moved_counters_printed_with_signs(self, tmp_path, capsys):
        baseline = make_report(
            [make_run("a", evals=100, expansions=5, hit_rate=0.25)]
        )
        fresh = make_report(
            [make_run("a", evals=90, expansions=7, hit_rate=0.5)]
        )
        assert run_main(tmp_path, baseline, fresh) == 0
        out = capsys.readouterr().out
        assert "insertions_evaluated 100 -> 90 (-10)" in out
        assert "window_expansions 5 -> 7 (+2)" in out
        assert "gap_cache_hit_rate 25.0% -> 50.0%" in out


class TestTimeGate:
    def test_slow_case_beyond_tolerance_fails(self, tmp_path, capsys):
        baseline = make_report([make_run("a", seconds=1.0)])
        fresh = make_report([make_run("a", seconds=1.5)])
        assert run_main(tmp_path, baseline, fresh) == 1
        assert "vs baseline" in capsys.readouterr().err

    def test_fast_baseline_cases_skipped(self, tmp_path):
        baseline = make_report([make_run("a", seconds=0.1)])
        fresh = make_report([make_run("a", seconds=0.4)])
        assert run_main(tmp_path, baseline, fresh) == 0

    def test_no_time_check_flag(self, tmp_path):
        baseline = make_report([make_run("a", seconds=1.0)])
        fresh = make_report([make_run("a", seconds=9.0)])
        assert run_main(tmp_path, baseline, fresh, "--no-time-check") == 0


class TestSectionGates:
    def test_parallel_divergence_fails(self, tmp_path, capsys):
        report = make_report(
            [make_run("a")],
            parallel={"name": "a", "hashes_match": False,
                      "serial_hash": "x", "parallel_hash": "y"},
        )
        assert run_main(tmp_path, report, report) == 1
        assert "diverged from serial" in capsys.readouterr().err

    def test_trace_structure_divergence_fails(self, tmp_path, capsys):
        report = make_report(
            [make_run("a")],
            trace={"name": "a", "workers": 2, "structure_match": False,
                   "hashes_match": True, "serial_structure_hash": "s",
                   "parallel_structure_hash": "p"},
        )
        assert run_main(tmp_path, report, report) == 1
        assert "trace structure hash" in capsys.readouterr().err

    def test_traced_placement_divergence_fails(self, tmp_path, capsys):
        report = make_report(
            [make_run("a")],
            trace={"name": "a", "workers": 2, "structure_match": True,
                   "hashes_match": False},
        )
        assert run_main(tmp_path, report, report) == 1
        assert "traced parallel placement" in capsys.readouterr().err

    def test_sections_optional_for_old_reports(self, tmp_path):
        report = make_report([make_run("a")])
        del report["parallel"]
        del report["trace_determinism"]
        assert run_main(tmp_path, report, report) == 0

    def test_trace_gate_passes_when_consistent(self, tmp_path):
        report = make_report(
            [make_run("a")],
            trace={"name": "a", "workers": 2, "structure_match": True,
                   "hashes_match": True},
        )
        assert run_main(tmp_path, report, report) == 0


def make_sharded(**overrides):
    section = {
        "name": "a",
        "scale": 0.2,
        "cells": 20000,
        "shards": 4,
        "shards_effective": 4,
        "workers": 4,
        "cells_per_sec": 5000.0,
        "legal": True,
        "violations": 0,
        "shards1_match": True,
        "workers_match": True,
        "baseline_hash": "aaaa",
        "shards1_hash": "aaaa",
        "sharded_hash": "cccc",
        "sharded_workers_hash": "cccc",
        "disp_delta_pct": 3.0,
        "reconciled": 120,
    }
    section.update(overrides)
    return section


class TestShardedGate:
    def test_clean_section_passes(self, tmp_path):
        report = make_report([make_run("a")])
        report["sharded"] = make_sharded()
        assert run_main(tmp_path, report, report) == 0

    def test_missing_section_is_not_a_failure(self, tmp_path):
        report = make_report([make_run("a")])
        assert "sharded" not in report
        assert run_main(tmp_path, report, report) == 0

    def test_illegal_placement_fails(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        report["sharded"] = make_sharded(legal=False, violations=3)
        assert run_main(tmp_path, report, report) == 1
        assert "not legal" in capsys.readouterr().err

    def test_shards1_divergence_fails(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        report["sharded"] = make_sharded(
            shards1_match=False, shards1_hash="bbbb"
        )
        assert run_main(tmp_path, report, report) == 1
        assert "shards=1 placement" in capsys.readouterr().err

    def test_worker_divergence_fails(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        report["sharded"] = make_sharded(
            workers_match=False, sharded_workers_hash="dddd"
        )
        assert run_main(tmp_path, report, report) == 1
        assert "diverged from serial" in capsys.readouterr().err

    def test_displacement_budget(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        report["sharded"] = make_sharded(disp_delta_pct=40.0)
        assert run_main(tmp_path, report, report) == 1
        assert "displacement drifted" in capsys.readouterr().err
        # A wider budget admits the same drift.
        assert run_main(
            tmp_path, report, report, "--max-shard-disp-growth", "0.5"
        ) == 0


class TestSummary:
    def test_summary_file_written(self, tmp_path):
        report = make_report([make_run("a")])
        report["sharded"] = make_sharded()
        summary = tmp_path / "summary.md"
        assert run_main(
            tmp_path, report, report, "--summary", str(summary)
        ) == 0
        text = summary.read_text()
        assert "## Bench regression" in text
        assert "| a@0.004 |" in text and "match" in text
        assert "### Sharded legalization" in text
        assert "| 20000 | 4 | 4 |" in text
        assert "clean" in text

    def test_summary_marks_failures(self, tmp_path):
        baseline = make_report([make_run("a", placement_hash="aaaa")])
        fresh = make_report([make_run("a", placement_hash="bbbb")])
        fresh["sharded"] = make_sharded(legal=False)
        summary = tmp_path / "summary.md"
        assert run_main(
            tmp_path, baseline, fresh, "--summary", str(summary)
        ) == 1
        text = summary.read_text()
        assert "**CHANGED**" in text
        assert "**FAIL**" in text
        assert "regression(s):" in text

    def test_render_summary_handles_new_cases(self):
        baseline = make_report([make_run("a")])
        fresh = make_report([make_run("a"), make_run("extra")])
        text = check_regression.render_summary(baseline, fresh, [])
        assert "| extra@0.004 |" in text and "new" in text


class TestAgainstRealArtifacts:
    """The committed BENCH_mgl.json must satisfy its own gate."""

    def test_committed_baseline_self_compares_clean(self, tmp_path):
        baseline = json.loads((ROOT / "BENCH_mgl.json").read_text())
        path = tmp_path / "copy.json"
        path.write_text(json.dumps(baseline))
        assert check_regression.main(
            [str(ROOT / "BENCH_mgl.json"), str(path)]
        ) == 0


def make_overhead(**overrides):
    section = {
        "name": "a",
        "scale": 0.05,
        "cells": 5600,
        "sample_every": 16,
        "plain_seconds": 5.0,
        "sampled_seconds": 5.15,
        "overhead_pct": 3.0,
        "plain_hash": "cafe",
        "sampled_hash": "cafe",
        "hashes_match": True,
        "span_count": 400,
        "structure_hash": "feed",
        "progress_events": 12,
    }
    section.update(overrides)
    return section


class TestTracingOverheadGate:
    def test_within_budget_passes(self, tmp_path):
        report = make_report([make_run("a")])
        report["tracing_overhead"] = make_overhead()
        assert run_main(tmp_path, report, report) == 0

    def test_hash_divergence_is_fatal(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        fresh = dict(report)
        fresh["tracing_overhead"] = make_overhead(
            sampled_hash="beef", hashes_match=False
        )
        assert run_main(tmp_path, report, fresh) == 1
        assert "diverged from the untraced run" in capsys.readouterr().err

    def test_overhead_above_budget_is_fatal(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        fresh = dict(report)
        fresh["tracing_overhead"] = make_overhead(
            overhead_pct=9.5, sampled_seconds=5.5
        )
        assert run_main(
            tmp_path, report, fresh, "--max-trace-overhead", "5.0"
        ) == 1
        err = capsys.readouterr().err
        assert "overhead +9.5% exceeds the 5% budget" in err

    def test_tiny_runs_never_gate_on_overhead(self, tmp_path):
        # Sub-min_seconds untraced runs measure timer noise.
        report = make_report([make_run("a")])
        fresh = dict(report)
        fresh["tracing_overhead"] = make_overhead(
            plain_seconds=0.02, overhead_pct=80.0
        )
        assert run_main(
            tmp_path, report, fresh, "--min-seconds", "0.5"
        ) == 0

    def test_absent_section_is_not_an_error(self, tmp_path):
        report = make_report([make_run("a")])
        assert run_main(tmp_path, report, report) == 0

    def test_summary_renders_the_section(self, tmp_path):
        report = make_report([make_run("a")])
        report["tracing_overhead"] = make_overhead()
        summary = tmp_path / "summary.md"
        assert run_main(
            tmp_path, report, report, "--summary", str(summary)
        ) == 0
        text = summary.read_text()
        assert "### Tracing overhead" in text
        assert "**3.0%**" in text and "12 progress events" in text


class TestStoreTrendGate:
    def store_args(self, tmp_path):
        return ("--store", str(tmp_path / "store"))

    def test_cold_store_passes_and_warms_up(self, tmp_path, capsys):
        report = make_report([make_run("a")])
        assert run_main(
            tmp_path, report, report, *self.store_args(tmp_path)
        ) == 0
        out = capsys.readouterr().out
        assert "trend not yet callable" in out
        assert "appended 1 record(s), 1 total" in out

    def test_steady_history_stays_clean(self, tmp_path, capsys):
        report = make_report([make_run("a", seconds=1.0)])
        for _ in range(4):
            assert run_main(
                tmp_path, report, report, *self.store_args(tmp_path)
            ) == 0
        assert "ok (+0.0% vs median)" in capsys.readouterr().out

    def test_injected_wall_time_regression_gates(self, tmp_path, capsys):
        steady = make_report([make_run("a", seconds=1.0)])
        for _ in range(3):
            assert run_main(
                tmp_path, steady, steady, *self.store_args(tmp_path)
            ) == 0
        slow = make_report([make_run("a", seconds=1.6)])
        # The fresh-vs-baseline time gate needs --min-seconds above the
        # case; only the store trend should fire here.
        assert run_main(
            tmp_path, steady, slow, *self.store_args(tmp_path),
            "--min-seconds", "5.0",
        ) == 1
        err = capsys.readouterr().err
        assert "store trend a@0.004: wall time 1.600s" in err
        assert "vs median 1.000s" in err

    def test_hash_flip_in_history_gates_without_timing(self, tmp_path):
        steady = make_report([make_run("a", placement_hash="aaaa")])
        for _ in range(2):
            run_main(tmp_path, steady, steady, *self.store_args(tmp_path))
        flipped = make_report([make_run("a", placement_hash="bbbb")])
        # Baseline is also flipped so only the store history detects it.
        assert run_main(
            tmp_path, flipped, flipped, *self.store_args(tmp_path)
        ) == 1
