"""Ordering audit of every numpy sort/search site in ``src/repro``.

The A001 rule is scoped to ``ordering-sensitive`` modules in the
checked-in config; this suite widens the scope to the *whole* package
and asserts the audit stays clean, so an unpinned ``np.argsort`` (or a
``searchsorted`` without ``side=``) anywhere in ``src/repro`` fails
here even if its module never joins the configured scope.  The
behavioral locks pin down the numpy semantics the audited sites rely
on (tie order under ``kind="stable"``, duplicate bracketing under
``side=``), so a numpy upgrade that changed them would be caught
directly rather than as a mysterious placement diff.
"""

import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint.config import load_config  # noqa: E402
from tools.repro_lint.engine import build_project, collect_files  # noqa: E402
from tools.repro_lint.rules.arrays import UnstableArraySortRule  # noqa: E402


def test_every_numpy_sort_site_in_package_is_order_pinned():
    config = replace(
        load_config(REPO_ROOT), ordering_sensitive=("src/repro/",)
    )
    files = collect_files(REPO_ROOT, ["src"], config)
    project, errors = build_project(REPO_ROOT, files)
    assert errors == []
    rule = UnstableArraySortRule()
    findings = []
    for source in project.files:
        findings.extend(rule.check_file(source, project, config))
    assert findings == [], "\n".join(v.render() for v in findings)


def test_gp_spreading_order_is_explicitly_stable():
    # The audit's one gp-side sort: candidate spreading order in the
    # quadratic placer must stay kind="stable" (it keys on float costs
    # with frequent ties across symmetric cells).
    quadratic = (REPO_ROOT / "src/repro/gp/quadratic.py").read_text(
        encoding="utf-8"
    )
    assert 'kind="stable"' in quadratic


def test_stable_argsort_preserves_tie_order():
    keys = np.array([2.0, 1.0, 2.0, 1.0, 1.0])
    assert list(np.argsort(keys, kind="stable")) == [1, 3, 4, 0, 2]
    # And on a tie-heavy array the stable order equals the Python
    # (key, index) tiebreak — the definition the legalizer relies on.
    ties = (np.arange(64) % 4).astype(float)
    expected = sorted(range(64), key=lambda i: (ties[i], i))
    assert list(np.argsort(ties, kind="stable")) == expected


def test_searchsorted_sides_bracket_duplicates():
    xs = np.array([0.0, 1.0, 1.0, 1.0, 2.0])
    # side="left": first admissible slot; side="right": one past the
    # last — the pair the segment-window and curve lookups depend on.
    assert int(np.searchsorted(xs, 1.0, side="left")) == 1
    assert int(np.searchsorted(xs, 1.0, side="right")) == 4
    assert int(np.searchsorted(xs, 0.5, side="left")) == int(
        np.searchsorted(xs, 0.5, side="right")
    ) == 1
