"""Unit tests for cell types and edge-spacing rules."""

import pytest

from repro.model.geometry import Rect
from repro.model.technology import (
    CellType,
    EdgeSpacingTable,
    PinShape,
    Technology,
)


class TestCellType:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CellType("bad", 0, 1)
        with pytest.raises(ValueError):
            CellType("bad", 2, -1)

    def test_multi_row_flag(self):
        assert CellType("d", 2, 2).is_multi_row
        assert not CellType("s", 2, 1).is_multi_row

    def test_parity_constraint_even_heights_only(self):
        assert CellType("h2", 2, 2).parity_constrained
        assert CellType("h4", 2, 4).parity_constrained
        assert not CellType("h1", 2, 1).parity_constrained
        assert not CellType("h3", 2, 3).parity_constrained

    def test_pin_lookup(self):
        pin = PinShape("a", 1, Rect(0, 0, 0.2, 0.3))
        cell_type = CellType("p", 2, 1, pins=(pin,))
        assert cell_type.pin_named("a") is pin
        with pytest.raises(KeyError):
            cell_type.pin_named("nope")

    def test_pin_placed_translation(self):
        pin = PinShape("a", 1, Rect(0.1, 0.2, 0.3, 0.4))
        assert pin.placed(1.0, 2.0) == Rect(1.1, 2.2, 1.3, 2.4)


class TestEdgeSpacingTable:
    def test_default_zero(self):
        assert EdgeSpacingTable().spacing(1, 2) == 0

    def test_symmetry(self):
        table = EdgeSpacingTable([(1, 2, 3)])
        assert table.spacing(1, 2) == 3
        assert table.spacing(2, 1) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EdgeSpacingTable([(1, 1, -1)])

    def test_max_spacing(self):
        table = EdgeSpacingTable([(1, 1, 1), (2, 2, 4)])
        assert table.max_spacing() == 4
        assert EdgeSpacingTable().max_spacing() == 0

    def test_items_sorted(self):
        table = EdgeSpacingTable([(2, 1, 3), (1, 1, 1)])
        assert table.items() == [(1, 1, 1), (1, 2, 3)]

    def test_equality(self):
        assert EdgeSpacingTable([(1, 2, 3)]) == EdgeSpacingTable([(2, 1, 3)])
        assert EdgeSpacingTable([(1, 2, 3)]) != EdgeSpacingTable()

    def test_len(self):
        assert len(EdgeSpacingTable([(1, 2, 3), (2, 1, 5)])) == 1  # overwritten


class TestTechnology:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Technology(cell_types=[CellType("x", 1, 1), CellType("x", 2, 1)])

    def test_type_named(self):
        tech = Technology(cell_types=[CellType("x", 1, 1)])
        assert tech.type_named("x").width == 1
        with pytest.raises(KeyError):
            tech.type_named("y")

    def test_add_cell_type(self):
        tech = Technology()
        tech.add_cell_type(CellType("new", 2, 3))
        assert tech.type_named("new").height == 3
        assert tech.max_height == 3

    def test_max_height_and_heights(self, basic_tech):
        assert basic_tech.max_height == 4
        assert basic_tech.heights() == [1, 2, 3, 4]

    def test_empty_library(self):
        assert Technology().max_height == 0
        assert Technology().heights() == []
