"""Direct tests for the scheduler's apply-time verification."""

import pytest

from repro.core.insertion import EvaluatedInsertion
from repro.core.mgl import MGLegalizer
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.core.scheduler import WindowScheduler
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


@pytest.fixture
def setup(basic_tech):
    design = Design(basic_tech, num_rows=6, num_sites=40, name="ver")
    design.add_cell("a", basic_tech.type_named("S4"), 10.0, 2.0)
    design.add_cell("b", basic_tech.type_named("S4"), 20.0, 2.0)
    design.add_cell("t", basic_tech.type_named("S4"), 15.0, 2.0)
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    placement.move(0, 10, 2)
    occupancy.add(0)
    placement.move(1, 20, 2)
    occupancy.add(1)
    legalizer = MGLegalizer(
        design, LegalizerParams(routability=False, scheduler_capacity=2)
    )
    scheduler = WindowScheduler(legalizer, occupancy)
    return design, placement, occupancy, scheduler


class TestStillValid:
    def test_clean_insertion_valid(self, setup):
        design, placement, occupancy, scheduler = setup
        insertion = EvaluatedInsertion(x=14, y=2, cost=0.0, moves=[])
        assert scheduler._still_valid(2, insertion)

    def test_overlap_with_existing_detected(self, setup):
        design, placement, occupancy, scheduler = setup
        insertion = EvaluatedInsertion(x=12, y=2, cost=0.0, moves=[])
        assert not scheduler._still_valid(2, insertion)  # overlaps cell 0

    def test_moves_relocate_conflicts(self, setup):
        design, placement, occupancy, scheduler = setup
        # Target at 12 works if cell 0 moves left to 6.
        insertion = EvaluatedInsertion(x=12, y=2, cost=0.0, moves=[(0, 6)])
        assert scheduler._still_valid(2, insertion)

    def test_planned_cells_checked_against_outsiders(self, setup):
        design, placement, occupancy, scheduler = setup
        # Moving cell 0 onto cell 1 is invalid even though the target fits.
        insertion = EvaluatedInsertion(x=2, y=2, cost=0.0, moves=[(0, 18)])
        assert not scheduler._still_valid(2, insertion)

    def test_edge_spacing_respected(self, edge_tech):
        design = Design(edge_tech, num_rows=4, num_sites=30, name="edge")
        design.add_cell("a", edge_tech.type_named("A"), 10.0, 1.0)
        design.add_cell("t", edge_tech.type_named("A"), 13.0, 1.0)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        placement.move(0, 10, 1)
        occupancy.add(0)
        legalizer = MGLegalizer(
            design, LegalizerParams(routability=False, scheduler_capacity=2)
        )
        scheduler = WindowScheduler(legalizer, occupancy)
        # A-A pairs need 1 site of spacing: x=12 abuts, invalid; x=13 ok.
        assert not scheduler._still_valid(
            1, EvaluatedInsertion(x=12, y=1, cost=0.0, moves=[])
        )
        assert scheduler._still_valid(
            1, EvaluatedInsertion(x=13, y=1, cost=0.0, moves=[])
        )


class TestReevaluationCounter:
    def test_counter_reported(self, small_design):
        from repro.model.placement import Placement as P

        legalizer = MGLegalizer(
            small_design, LegalizerParams(routability=False, scheduler_capacity=6)
        )
        placement = P(small_design)
        occupancy = Occupancy(small_design, placement)
        scheduler = WindowScheduler(legalizer, occupancy)
        scheduler.run()
        assert scheduler.reevaluations >= 0  # populated, non-negative
        from repro.checker import check_legal

        assert check_legal(placement).is_legal
