"""Cross-stage invariants the paper's flow guarantees.

* MGL with edge rules active never creates edge-spacing violations
  (fillers are part of the insertion math, §3.4);
* the matching stage changes neither the violation counts nor the
  multiset of occupied positions (§3.2);
* stage 3 with the guard never increases pin violations (§3.4);
* the scheduler's thread pool does not change results.
"""

import pytest

from repro import LegalizerParams, legalize
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal, count_routability_violations
from repro.core.flowopt import optimize_fixed_row_order
from repro.core.matching import optimize_max_displacement
from repro.core.mgl import MGLegalizer
from repro.core.refine import RoutabilityGuard


@pytest.fixture(scope="module")
def edge_rule_design():
    return generate_design(
        SyntheticSpec(
            name="edges",
            cells_by_height={1: 240, 2: 24, 3: 10},
            density=0.6,
            seed=31,
            with_edge_rules=True,
        )
    )


@pytest.fixture(scope="module")
def rails_design():
    return generate_design(
        SyntheticSpec(
            name="rails",
            cells_by_height={1: 220, 2: 20},
            density=0.5,
            seed=37,
            with_rails=True,
            num_io_pins=8,
        )
    )


class TestEdgeSpacing:
    def test_mgl_creates_no_edge_violations(self, edge_rule_design):
        placement = MGLegalizer(
            edge_rule_design,
            LegalizerParams(routability=False, scheduler_capacity=1),
        ).run()
        assert check_legal(placement).is_legal
        report = count_routability_violations(placement)
        assert report.edge_violations == 0

    def test_full_flow_keeps_zero_edge_violations(self, edge_rule_design):
        result = legalize(edge_rule_design, LegalizerParams(scheduler_capacity=1))
        report = count_routability_violations(result.placement)
        assert report.edge_violations == 0


class TestMatchingNeutrality:
    def test_violation_counts_unchanged(self, rails_design):
        params = LegalizerParams(scheduler_capacity=1)
        placement = MGLegalizer(rails_design, params).run()
        before = count_routability_violations(placement)
        optimize_max_displacement(placement, params)
        after = count_routability_violations(placement)
        assert (after.pin_short, after.pin_access, after.edge_violations) == (
            before.pin_short, before.pin_access, before.edge_violations
        )


class TestStage3Guard:
    def test_pin_violations_never_increase(self, rails_design):
        params = LegalizerParams(scheduler_capacity=1)
        guard = RoutabilityGuard(rails_design, params)
        placement = MGLegalizer(rails_design, params, guard=guard).run()
        before = count_routability_violations(placement).pin_violations
        optimize_fixed_row_order(placement, params, guard=guard)
        after = count_routability_violations(placement).pin_violations
        assert after <= before
        assert check_legal(placement).is_legal


class TestSchedulerThreads:
    def test_threads_do_not_change_results(self, edge_rule_design):
        base = LegalizerParams(
            routability=False, scheduler_capacity=4, scheduler_threads=0
        )
        threaded = LegalizerParams(
            routability=False, scheduler_capacity=4, scheduler_threads=4
        )
        a = MGLegalizer(edge_rule_design, base).run()
        b = MGLegalizer(edge_rule_design, threaded).run()
        assert a.x == b.x and a.y == b.y

    def test_threaded_run_legal(self, rails_design):
        params = LegalizerParams(scheduler_capacity=4, scheduler_threads=2)
        placement = MGLegalizer(rails_design, params).run()
        assert check_legal(placement).is_legal
