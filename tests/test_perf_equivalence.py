"""Equivalence properties of the perf-optimized hot paths.

The PR that introduced the gap cache, best-first candidate evaluation,
and the compiled :class:`~repro.core.curves.CurveSet` claims all three
are *pure* optimizations: placements (and the placement-relevant stats)
are bit-identical with or without them.  These tests pin that contract:

* ``candidate_order=best_first`` vs ``linear`` — identical placements,
  identical cells placed and window expansions, and the lazy path never
  evaluates more insertion points than the exhaustive one;
* ``use_gap_cache`` on vs off — identical placements and identical
  evaluation counts (the cache may only skip re-*enumeration*);
* ``CurveSet.value`` / ``values`` / ``minimize`` vs the reference
  :meth:`DisplacementCurve.value` walk and
  :func:`minimize_over_sites` — equal to the last bit;
* the :class:`~repro.core.insertion.GapCache` invalidation contract
  against :meth:`Occupancy.row_version`;
* the :class:`repro.perf.PerfRecorder` bookkeeping itself.
"""

import json
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.curves import (
    CurveSet,
    DisplacementCurve,
    minimize_over_sites,
    sum_curves,
)
from repro.core.insertion import GapCache, InsertionContext
from repro.core.mgl import MGLegalizer
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology
from repro.perf import PerfRecorder


def build_design(seed: int, density: float, with_fence: bool) -> Design:
    """A random mixed-height design, optionally with one fence region."""
    rng = random.Random(seed)
    tech = Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("D2", 2, 2),
            CellType("T3", 3, 3),
        ]
    )
    rows = rng.choice([8, 12])
    sites = rng.choice([40, 60])
    design = Design(tech, num_rows=rows, num_sites=sites, name=f"eq{seed}")
    fence_id = 0
    if with_fence:
        fence = FenceRegion(
            fence_id=1,
            name="f1",
            rects=[Rect(4, 0, sites // 2, rows // 2 * 2)],
        )
        design.add_fence(fence)
        fence_id = 1
    target = density * rows * sites
    area = 0
    index = 0
    while area < target:
        cell_type = rng.choice(tech.cell_types)
        in_fence = with_fence and rng.random() < 0.3
        design.add_cell(
            f"c{index}",
            cell_type,
            rng.uniform(0, sites - cell_type.width),
            rng.uniform(0, rows - cell_type.height),
            fence_id=fence_id if in_fence else 0,
        )
        area += cell_type.width * cell_type.height
        index += 1
    return design


def run_once(design: Design, **overrides: object) -> "tuple":
    params = LegalizerParams(routability=False, **overrides)  # type: ignore[arg-type]
    legalizer = MGLegalizer(design, params)
    placement = legalizer.run()
    return list(zip(placement.x, placement.y)), dict(legalizer.stats)


class TestTraversalEquivalence:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), density=st.floats(0.2, 0.6),
           with_fence=st.booleans(), capacity=st.sampled_from([1, 8]))
    def test_best_first_matches_linear(self, seed, density, with_fence,
                                       capacity):
        design = build_design(seed, density, with_fence)
        fast_pos, fast_stats = run_once(
            design, candidate_order="best_first", scheduler_capacity=capacity
        )
        lin_pos, lin_stats = run_once(
            design, candidate_order="linear", scheduler_capacity=capacity
        )
        assert fast_pos == lin_pos
        assert fast_stats["cells_placed"] == lin_stats["cells_placed"]
        assert (
            fast_stats["window_expansions"] == lin_stats["window_expansions"]
        )
        # Lazy evaluation may only ever *save* exact evaluations.
        assert (
            fast_stats["insertions_evaluated"]
            <= lin_stats["insertions_evaluated"]
        )

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), density=st.floats(0.2, 0.6),
           with_fence=st.booleans())
    def test_gap_cache_is_transparent(self, seed, density, with_fence):
        design = build_design(seed, density, with_fence)
        cached_pos, cached_stats = run_once(design, use_gap_cache=True)
        plain_pos, plain_stats = run_once(design, use_gap_cache=False)
        assert cached_pos == plain_pos
        # The cache skips re-enumeration, never an exact evaluation.
        assert (
            cached_stats["insertions_evaluated"]
            == plain_stats["insertions_evaluated"]
        )
        assert plain_stats["gap_cache_hits"] == 0
        assert plain_stats["gap_cache_misses"] == 0


def random_curves(rng: random.Random, count: int) -> "list[DisplacementCurve]":
    curves = [DisplacementCurve.target(rng.uniform(0, 40), rng.choice([1.0, 0.5]))]
    for _ in range(count):
        kind = rng.randrange(3)
        current = rng.uniform(0, 40)
        gp = rng.uniform(0, 40)
        offset = rng.uniform(0.5, 6)
        weight = rng.choice([1.0, 0.5, 2.0])
        if kind == 0:
            curves.append(
                DisplacementCurve.pushed_right(current, gp, offset, weight)
            )
        elif kind == 1:
            curves.append(
                DisplacementCurve.pushed_left(current, gp, offset, weight)
            )
        else:
            curves.append(DisplacementCurve.constant(rng.uniform(0, 3)))
    return curves


class TestCurveSetBitExact:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000), count=st.integers(0, 8))
    def test_value_matches_reference_walk(self, seed, count):
        rng = random.Random(seed)
        curves = random_curves(rng, count)
        reference = sum_curves(curves)
        compiled = CurveSet(curves)
        probes = [rng.uniform(-10, 50) for _ in range(20)]
        probes += [float(x) for x in range(-5, 46, 5)]
        probes.append(reference.anchor_x)
        for bp_x, _ in reference.breakpoints:
            probes.append(bp_x)
        for x in probes:
            assert compiled.value(x) == reference.value(x), x

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000), count=st.integers(0, 8))
    def test_minimize_matches_reference(self, seed, count):
        rng = random.Random(seed)
        curves = random_curves(rng, count)
        lo = rng.uniform(-5, 20)
        hi = lo + rng.uniform(0, 30)
        assert CurveSet(curves).minimize(lo, hi) == minimize_over_sites(
            curves, lo, hi
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000), count=st.integers(0, 8))
    def test_vectorized_values_match_scalar(self, seed, count):
        rng = random.Random(seed)
        curves = random_curves(rng, count)
        compiled = CurveSet(curves)
        # 40 points forces the NumPy path; compare against scalar calls.
        xs = [rng.uniform(-10, 50) for _ in range(40)]
        batch = compiled.values(xs)
        for x, got in zip(xs, batch):
            assert float(got) == compiled.value(x)

    def test_empty_range_returns_none(self):
        curves = [DisplacementCurve.target(3.0)]
        assert CurveSet(curves).minimize(2.4, 2.6) is None
        assert minimize_over_sites(curves, 2.4, 2.6) is None


def small_design() -> Design:
    tech = Technology(cell_types=[CellType("S2", 2, 1), CellType("D2", 2, 2)])
    design = Design(tech, num_rows=6, num_sites=30, name="cache")
    for index in range(6):
        design.add_cell(f"c{index}", tech.cell_types[index % 2],
                        4.0 * index, float(index % 4))
    return design


def context_for(design: Design, occupancy: Occupancy, cell: int,
                cache: "GapCache | None") -> InsertionContext:
    return InsertionContext(
        design,
        occupancy,
        cell,
        design.chip_rect,
        weight_of=lambda _c: 1.0,
        gap_cache=cache,
    )


class TestGapCacheInvalidation:
    def test_hit_then_invalidate_on_row_mutation(self):
        design = small_design()
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        placement.move(0, 0, 0)
        occupancy.add(0)
        cache = GapCache()
        context = context_for(design, occupancy, 1, cache)
        first = cache.gaps_in_row(context, 0)
        again = cache.gaps_in_row(context, 0)
        assert again is first  # served from cache, shared list
        assert cache.hits == 1 and cache.misses == 1
        # The context itself memoizes per row: its first lookup hits the
        # cache, repeats never touch it again.
        assert context.gaps_in_row(0) is first
        assert context.gaps_in_row(0) is first
        assert cache.hits == 2 and cache.misses == 1
        # Mutating row 0 bumps its version; the entry must be recomputed.
        version = occupancy.row_version(0)
        occupancy.update_x(0, 2)
        assert occupancy.row_version(0) > version
        recomputed = cache.gaps_in_row(context, 0)
        assert recomputed is not first
        assert cache.misses == 2
        # Fresh result matches an uncached context bit for bit.
        plain = context_for(design, occupancy, 1, None)
        assert recomputed == plain.gaps_in_row(0)

    def test_rebinds_on_new_occupancy(self):
        design = small_design()
        cache = GapCache()
        occ_a = Occupancy(design, Placement(design))
        context_a = context_for(design, occ_a, 1, cache)
        context_a.gaps_in_row(1)
        assert cache.misses == 1
        occ_b = Occupancy(design, Placement(design))
        context_b = context_for(design, occ_b, 1, cache)
        context_b.gaps_in_row(1)
        # Entries from occ_a must not leak into occ_b's queries.
        assert cache.misses == 2

    def test_overflow_clears_instead_of_growing(self):
        design = small_design()
        occupancy = Occupancy(design, Placement(design))
        cache = GapCache(max_entries=2)
        context = context_for(design, occupancy, 1, cache)
        for row in range(5):
            context.gaps_in_row(row)
        assert len(cache._entries) <= 2


class TestPerfRecorder:
    def test_stage_and_counters(self):
        recorder = PerfRecorder()
        with recorder.stage("mgl"):
            pass
        with recorder.stage("mgl"):
            pass
        recorder.record("flow_opt", 0.25)
        recorder.count("evals", 3)
        recorder.merge_counters({"hits": 2, "evals": 1}, prefix="mgl.")
        assert recorder.stage_calls["mgl"] == 2
        assert recorder.timings["flow_opt"] == 0.25
        assert recorder.counters == {"evals": 3, "mgl.hits": 2, "mgl.evals": 1}

    def test_json_roundtrip(self, tmp_path):
        recorder = PerfRecorder()
        recorder.record("mgl", 1.5)
        recorder.count("mgl.gap_cache_hits", 3)
        recorder.count("mgl.gap_cache_misses", 1)
        path = tmp_path / "perf.json"
        recorder.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["timings"]["mgl"] == 1.5
        assert payload["counters"]["mgl.gap_cache_hits"] == 3
        summary = recorder.summary()
        assert "mgl" in summary
        assert "hit rate: 75.0%" in summary

    def test_legalizer_records_stages(self):
        design = small_design()
        from repro import legalize

        recorder = PerfRecorder()
        result = legalize(
            design, LegalizerParams(routability=False), recorder=recorder
        )
        assert result.placement is not None
        assert set(recorder.timings) >= {"mgl", "matching", "flow_opt"}
        assert recorder.counters["mgl.cells_placed"] == design.num_cells
