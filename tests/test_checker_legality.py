"""Tests for the hard-constraint legality checker."""

import pytest

from repro.checker import check_legal
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


@pytest.fixture
def design(basic_tech):
    d = Design(basic_tech, num_rows=8, num_sites=40, name="check")
    d.add_fence(FenceRegion(1, "f", [Rect(20, 0, 40, 4)]))
    return d


def add(design, type_name, gp=(0.0, 0.0), fence=0, fixed=False):
    return design.add_cell(
        f"c{design.num_cells}",
        design.technology.type_named(type_name),
        gp[0], gp[1], fence_id=fence, fixed=fixed,
    )


class TestLegal:
    def test_empty_is_legal(self, design):
        assert check_legal(Placement(design)).is_legal

    def test_single_cell_legal(self, design):
        add(design, "S2")
        placement = Placement(design)
        placement.move(0, 5, 3)
        report = check_legal(placement)
        assert report.is_legal
        assert report.summary() == "legal"


class TestViolations:
    def test_out_of_bounds(self, design):
        add(design, "S4")
        placement = Placement(design)
        placement.move(0, 38, 0)  # 38+4 > 40
        report = check_legal(placement)
        assert report.out_of_bounds
        assert 0 in report.violating_cells

    def test_negative_position(self, design):
        add(design, "S2")
        placement = Placement(design)
        placement.move(0, -1, 0)
        assert check_legal(placement).out_of_bounds

    def test_overlap_same_row(self, design):
        add(design, "S4")
        add(design, "S4")
        placement = Placement(design)
        placement.move(0, 5, 3)
        placement.move(1, 7, 3)
        report = check_legal(placement)
        assert report.overlap_pairs == [(0, 1)]

    def test_overlap_multirow(self, design):
        add(design, "T3")  # 3 rows tall
        add(design, "S2")
        placement = Placement(design)
        placement.move(0, 5, 2)
        placement.move(1, 6, 4)  # inside the tall cell's top row
        report = check_legal(placement)
        assert report.overlap_pairs == [(0, 1)]

    def test_hidden_overlap_behind_wide_cell(self, design):
        add(design, "S4")
        add(design, "S2")
        add(design, "S2")
        placement = Placement(design)
        placement.move(0, 5, 3)   # [5, 9)
        placement.move(1, 6, 3)   # inside 0
        placement.move(2, 7, 3)   # inside 0 and overlapping 1
        report = check_legal(placement)
        assert set(report.overlap_pairs) == {(0, 1), (0, 2), (1, 2)}

    def test_abutting_is_legal(self, design):
        add(design, "S4")
        add(design, "S4")
        placement = Placement(design)
        placement.move(0, 5, 3)
        placement.move(1, 9, 3)
        assert check_legal(placement).is_legal

    def test_parity_violation(self, design):
        cell = add(design, "D3")  # even height -> parity 0 required
        placement = Placement(design)
        placement.move(cell, 5, 5)
        report = check_legal(placement)
        assert report.parity_violations

    def test_odd_height_any_parity(self, design):
        cell = add(design, "T3")
        placement = Placement(design)
        placement.move(cell, 5, 5)
        assert check_legal(placement).is_legal

    def test_fence_containment(self, design):
        cell = add(design, "S2", fence=1)
        placement = Placement(design)
        placement.move(cell, 5, 1)  # outside fence 1
        report = check_legal(placement)
        assert report.segment_violations

    def test_default_cell_inside_fence_rejected(self, design):
        cell = add(design, "S2", fence=0)
        placement = Placement(design)
        placement.move(cell, 25, 1)  # inside fence 1's rect
        report = check_legal(placement)
        assert report.segment_violations

    def test_fence_cell_inside_fence_ok(self, design):
        cell = add(design, "S2", fence=1)
        placement = Placement(design)
        placement.move(cell, 25, 1)
        assert check_legal(placement).is_legal

    def test_blockage_violation(self, basic_tech):
        d = Design(basic_tech, num_rows=4, num_sites=20, name="blk")
        d.add_blockage(Rect(5, 0, 10, 4))
        cell = d.add_cell("c", basic_tech.type_named("S2"), 0, 0)
        placement = Placement(d)
        placement.move(cell, 6, 1)
        assert check_legal(placement).segment_violations

    def test_fixed_cell_moved(self, design):
        cell = add(design, "S2", gp=(3.0, 2.0), fixed=True)
        placement = Placement(design)
        placement.move(cell, 4, 2)
        report = check_legal(placement)
        assert report.fixed_moved

    def test_multirow_straddling_fence_boundary(self, design):
        # Fence 1 covers rows 0..3; a 3-row default cell at rows 2..4
        # entering the fence x-range must be flagged on rows 2 and 3.
        cell = add(design, "T3", fence=0)
        placement = Placement(design)
        placement.move(cell, 25, 2)
        report = check_legal(placement)
        assert report.segment_violations

    def test_summary_counts(self, design):
        add(design, "S4")
        add(design, "S4")
        placement = Placement(design)
        placement.move(0, 5, 3)
        placement.move(1, 7, 3)
        report = check_legal(placement)
        assert "1 overlap" in report.summary()
        assert len(report.all_messages()) == 1


class TestRegionCheck:
    def test_region_catches_local_overlap(self, design):
        from repro.checker import check_legal_region

        add(design, "S4")
        add(design, "S4")
        placement = Placement(design)
        placement.move(0, 5, 3)
        placement.move(1, 7, 3)
        report = check_legal_region(placement, [1])
        assert report.overlap_pairs == [(0, 1)]

    def test_region_ignores_remote_violations(self, design):
        from repro.checker import check_legal_region

        add(design, "S4")   # cell 0: will overlap cell 1, far from cell 2
        add(design, "S4")
        add(design, "S2")
        placement = Placement(design)
        placement.move(0, 5, 3)
        placement.move(1, 7, 3)   # overlap, but not in the region
        placement.move(2, 30, 6)
        report = check_legal_region(placement, [2])
        assert report.is_legal  # the region itself is clean

    def test_region_checks_per_cell_constraints(self, design):
        from repro.checker import check_legal_region

        cell = add(design, "D3")  # parity-constrained
        placement = Placement(design)
        placement.move(cell, 5, 5)  # odd row: violation
        report = check_legal_region(placement, [cell])
        assert report.parity_violations

    def test_region_catches_neighbor_in_other_row_band(self, design):
        from repro.checker import check_legal_region

        tall = add(design, "T3")
        small = add(design, "S2")
        placement = Placement(design)
        placement.move(tall, 5, 2)
        placement.move(small, 6, 4)  # sits inside the tall cell's top row
        report = check_legal_region(placement, [small])
        assert report.overlap_pairs == [(tall, small)]
