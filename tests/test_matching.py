"""Tests for the max-displacement matching stage (paper §3.2)."""

import pytest

from repro.checker import check_legal, count_routability_violations
from repro.core.matching import (
    MatchingStats,
    adaptive_delta0,
    optimize_max_displacement,
    phi,
    phi_int,
)
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


class TestPhi:
    def test_linear_below_threshold(self):
        assert phi(3.0, 5.0) == 3.0
        assert phi(5.0, 5.0) == 5.0

    def test_quintic_above_threshold(self):
        assert phi(10.0, 5.0) == pytest.approx(10.0**5 / 5.0**4)

    def test_continuous_at_threshold(self):
        assert phi(5.0 + 1e-12, 5.0) == pytest.approx(5.0, rel=1e-6)

    def test_strictly_increasing(self):
        values = [phi(d / 10.0, 3.0) for d in range(0, 100)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_phi_int_matches_scaled_float(self):
        delta0 = 48  # 3.0 rows at scale 16
        for delta in (10, 48, 60, 200):
            expected = phi(delta / 16.0, 3.0) * (16.0 * 48**4)
            assert phi_int(delta, delta0) == pytest.approx(expected, rel=1e-9)


def swap_test_design():
    """Two same-type cells whose GPs are swapped relative to placement."""
    tech = Technology(cell_types=[CellType("X", 2, 1)])
    design = Design(tech, num_rows=4, num_sites=30, name="swap")
    design.add_cell("a", tech.type_named("X"), 20.0, 0.0)
    design.add_cell("b", tech.type_named("X"), 2.0, 0.0)
    return design


class TestMatching:
    def test_swaps_crossed_cells(self):
        design = swap_test_design()
        placement = Placement(design)
        placement.move(0, 2, 0)   # far from its GP (20)
        placement.move(1, 20, 0)  # far from its GP (2)
        stats = optimize_max_displacement(placement)
        assert placement.position(0) == (20, 0)
        assert placement.position(1) == (2, 0)
        assert stats.cells_moved == 2
        assert stats.max_disp_after < stats.max_disp_before

    def test_different_types_not_swapped(self):
        tech = Technology(cell_types=[CellType("X", 2, 1), CellType("Y", 2, 1)])
        design = Design(tech, num_rows=2, num_sites=30, name="types")
        design.add_cell("a", tech.type_named("X"), 20.0, 0.0)
        design.add_cell("b", tech.type_named("Y"), 2.0, 0.0)
        placement = Placement(design)
        placement.move(0, 2, 0)
        placement.move(1, 20, 0)
        optimize_max_displacement(placement)
        assert placement.position(0) == (2, 0)  # unchanged

    def test_different_fences_not_swapped(self):
        from repro.model.fence import FenceRegion
        from repro.model.geometry import Rect

        tech = Technology(cell_types=[CellType("X", 2, 1)])
        design = Design(tech, num_rows=2, num_sites=40, name="fences")
        design.add_fence(FenceRegion(1, "f", [Rect(0, 0, 10, 2)]))
        design.add_cell("a", tech.type_named("X"), 30.0, 0.0, fence_id=0)
        design.add_cell("b", tech.type_named("X"), 2.0, 0.0, fence_id=1)
        placement = Placement(design)
        placement.move(0, 12, 0)
        placement.move(1, 2, 0)
        optimize_max_displacement(placement)
        assert placement.position(0) == (12, 0)

    def test_legality_preserved(self, small_design):
        placement = MGLegalizer(
            small_design, LegalizerParams(routability=False, scheduler_capacity=1)
        ).run()
        assert check_legal(placement).is_legal
        optimize_max_displacement(placement)
        assert check_legal(placement).is_legal

    def test_routability_preserved(self, rail_design):
        params = LegalizerParams(scheduler_capacity=1)
        placement = MGLegalizer(rail_design, params).run()
        before = count_routability_violations(placement).total
        optimize_max_displacement(placement, params)
        after = count_routability_violations(placement).total
        assert after == before

    def test_max_displacement_not_increased_much(self, small_design):
        placement = MGLegalizer(
            small_design, LegalizerParams(routability=False, scheduler_capacity=1)
        ).run()
        before = max(placement.displacements())
        optimize_max_displacement(placement)
        after = max(placement.displacements())
        assert after <= before + 1e-9

    def test_backends_agree_on_cost(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        base = MGLegalizer(small_design, params).run()
        a = base.copy()
        b = base.copy()
        stats_scipy = optimize_max_displacement(a, params, backend="scipy")
        stats_flow = optimize_max_displacement(b, params, backend="flow")
        # Costs are computed differently (float vs scaled int) but the
        # achieved displacement profile must match closely.
        assert stats_scipy.max_disp_after == pytest.approx(
            stats_flow.max_disp_after, abs=0.2
        )

    def test_chunking_large_groups(self):
        tech = Technology(cell_types=[CellType("X", 1, 1)])
        design = Design(tech, num_rows=1, num_sites=100, name="big")
        for index in range(30):
            design.add_cell(f"c{index}", tech.type_named("X"), float(index), 0.0)
        placement = Placement(design)
        for index in range(30):
            placement.move(index, 29 - index, 0)  # fully reversed
        params = LegalizerParams(matching_max_group=8)
        stats = optimize_max_displacement(placement, params)
        assert stats.groups >= 4  # split into ceil(30/8) chunks
        assert stats.max_disp_after <= stats.max_disp_before


class TestAdaptiveDelta0:
    def test_p90_of_displacements(self):
        design = swap_test_design()
        placement = Placement(design)
        placement.move(0, 20, 0)
        placement.move(1, 2, 0)
        assert adaptive_delta0(placement) == 1.0  # all zero -> floor of 1

    def test_floor_of_one(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        assert adaptive_delta0(placement) >= 1.0
