"""Tests for the GP substrate (perturbation + quadratic placer)."""

import pytest

from repro.gp import QuadraticPlacer, perturb_placement, quadratic_global_placement
from repro.model.netlist import Net, PinRef
from repro.model.placement import Placement


class TestPerturb:
    def test_overwrites_gp(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        old_gp = list(small_design.gp_x)
        perturb_placement(placement, sigma_rows=2.0, seed=1)
        assert list(small_design.gp_x) != old_gp

    def test_deterministic(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        perturb_placement(placement, seed=3)
        first = list(small_design.gp_x)
        perturb_placement(placement, seed=3)
        assert list(small_design.gp_x) == first

    def test_zero_sigma_is_identity(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        perturb_placement(placement, sigma_rows=0.0, seed=1)
        for cell in small_design.movable_cells():
            assert small_design.gp_x[cell] == placement.x[cell]
            assert small_design.gp_y[cell] == placement.y[cell]

    def test_clamped_to_chip(self, small_design):
        placement = Placement.from_gp_rounded(small_design)
        perturb_placement(placement, sigma_rows=50.0, seed=2)
        for cell in range(small_design.num_cells):
            ct = small_design.cell_type_of(cell)
            assert 0 <= small_design.gp_x[cell] <= small_design.num_sites - ct.width
            assert 0 <= small_design.gp_y[cell] <= small_design.num_rows - ct.height

    def test_fixed_cells_untouched(self, basic_tech):
        from repro.model.design import Design

        design = Design(basic_tech, num_rows=4, num_sites=20, name="fx")
        design.add_cell("f", basic_tech.type_named("S2"), 5, 1, fixed=True)
        placement = Placement(design)
        placement.move(0, 5, 1)
        perturb_placement(placement, sigma_rows=3.0, seed=1)
        assert design.gp_x[0] == 5 and design.gp_y[0] == 1


class TestQuadraticPlacer:
    def test_connected_cells_attract(self, small_design):
        small_design.netlist.add_net(Net("n", [PinRef(0), PinRef(1)]))
        placer = QuadraticPlacer(iterations=60, spread=False, seed=1)
        xs, ys = placer.place(small_design)
        # Cells 0 and 1 share a net; they must end closer than two random
        # unconnected cells on average.
        connected = abs(xs[0] - xs[1]) + abs(ys[0] - ys[1])
        unconnected = abs(xs[2] - xs[3]) + abs(ys[2] - ys[3])
        assert connected < unconnected

    def test_positions_inside_chip(self, small_design):
        quadratic_global_placement(small_design, seed=2)
        for cell in range(small_design.num_cells):
            ct = small_design.cell_type_of(cell)
            assert 0 <= small_design.gp_x[cell] <= small_design.num_sites - ct.width
            assert 0 <= small_design.gp_y[cell] <= small_design.num_rows - ct.height

    def test_deterministic(self, small_design):
        quadratic_global_placement(small_design, seed=5)
        first = list(small_design.gp_x)
        quadratic_global_placement(small_design, seed=5)
        assert list(small_design.gp_x) == first

    def test_spread_fills_chip(self, small_design):
        for index in range(0, small_design.num_cells - 1, 2):
            small_design.netlist.add_net(
                Net(f"n{index}", [PinRef(index), PinRef(index + 1)])
            )
        placer = QuadraticPlacer(iterations=40, spread=True, seed=3)
        xs, ys = placer.place(small_design)
        assert xs.max() - xs.min() > 0.5 * small_design.num_sites
        assert ys.max() - ys.min() > 0.5 * small_design.num_rows

    def test_gp_to_legalization_roundtrip(self, small_design):
        """The examples' pipeline: netlist -> GP -> legal placement."""
        from repro import LegalizerParams, legalize
        from repro.checker import check_legal

        for index in range(0, small_design.num_cells - 2, 3):
            small_design.netlist.add_net(
                Net(f"n{index}", [PinRef(index), PinRef(index + 1), PinRef(index + 2)])
            )
        quadratic_global_placement(small_design, seed=4)
        result = legalize(
            small_design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        assert check_legal(result.placement).is_legal
