"""Unit tests for fence regions."""

import pytest

from repro.model.fence import DEFAULT_FENCE, FenceRegion, fences_overlap
from repro.model.geometry import Interval, Rect


class TestFenceRegion:
    def test_reserved_id_rejected(self):
        with pytest.raises(ValueError):
            FenceRegion(0, "bad")
        with pytest.raises(ValueError):
            FenceRegion(-1, "bad")

    def test_contains_rect_single_member(self):
        fence = FenceRegion(1, "f", [Rect(0, 0, 10, 10)])
        assert fence.contains_rect(Rect(2, 2, 8, 8))
        assert not fence.contains_rect(Rect(8, 8, 12, 9))

    def test_contains_rect_needs_single_member(self):
        fence = FenceRegion(1, "f", [Rect(0, 0, 5, 10), Rect(5, 0, 10, 10)])
        # Straddles two member rects: not contained by either one.
        assert not fence.contains_rect(Rect(3, 2, 7, 4))

    def test_overlaps_rect(self):
        fence = FenceRegion(1, "f", [Rect(0, 0, 10, 10)])
        assert fence.overlaps_rect(Rect(9, 9, 12, 12))
        assert not fence.overlaps_rect(Rect(10, 0, 12, 10))

    def test_row_intervals_height(self):
        fence = FenceRegion(1, "f", [Rect(5, 2, 20, 6)])
        assert fence.row_intervals(2) == [Interval(5, 20)]
        assert fence.row_intervals(5) == [Interval(5, 20)]
        assert fence.row_intervals(6) == []
        # A 2-row cell with bottom row 5 needs rows 5..6: not covered.
        assert fence.row_intervals(5, height=2) == []
        assert fence.row_intervals(4, height=2) == [Interval(5, 20)]

    def test_row_intervals_sorted(self):
        fence = FenceRegion(1, "f", [Rect(30, 0, 40, 5), Rect(5, 0, 15, 5)])
        assert fence.row_intervals(1) == [Interval(5, 15), Interval(30, 40)]

    def test_bounding_box(self):
        fence = FenceRegion(1, "f", [Rect(0, 0, 5, 5), Rect(10, 2, 15, 9)])
        assert fence.bounding_box == Rect(0, 0, 15, 9)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            FenceRegion(1, "f").bounding_box


def test_fences_overlap_detection():
    f1 = FenceRegion(1, "a", [Rect(0, 0, 10, 10)])
    f2 = FenceRegion(2, "b", [Rect(5, 5, 15, 15)])
    f3 = FenceRegion(3, "c", [Rect(20, 0, 30, 10)])
    assert fences_overlap([f1, f2])
    assert not fences_overlap([f1, f3])
    assert not fences_overlap([f1])
    assert not fences_overlap([])


def test_default_fence_constant():
    assert DEFAULT_FENCE == 0
