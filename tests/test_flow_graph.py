"""Unit tests for the flow-graph representation."""

import pytest

from repro.flow.graph import INFINITE, FlowGraph, edges_by_name


class TestFlowGraph:
    def test_add_node_and_supply(self):
        graph = FlowGraph()
        a = graph.add_node(supply=3)
        b = graph.add_node(supply=-3)
        assert graph.supplies == [3, -3]
        graph.add_supply(a, 2)
        assert graph.supplies[a] == 5
        assert graph.total_supply_imbalance() == 2
        assert b == 1

    def test_named_nodes(self):
        graph = FlowGraph()
        graph.add_node(name="vz")
        assert graph.node_named("vz") == 0
        with pytest.raises(ValueError):
            graph.add_node(name="vz")

    def test_edge_validation(self):
        graph = FlowGraph()
        graph.add_node()
        with pytest.raises(ValueError):
            graph.add_edge(0, 5, capacity=1, cost=0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, capacity=-1, cost=0)

    def test_infinite_capacity_bound(self):
        graph = FlowGraph()
        graph.add_node(supply=5)
        graph.add_node(supply=-5)
        graph.add_edge(0, 1, capacity=7, cost=1)
        graph.add_edge(0, 1, capacity=INFINITE, cost=2)
        bound = graph.infinite_capacity_bound()
        assert bound == 5 + 5 + 7 + 1
        assert graph.resolved_capacities() == [7, bound]

    def test_edges_by_name(self):
        graph = FlowGraph()
        graph.add_node()
        graph.add_node()
        graph.add_edge(0, 1, 1, 0, name="e0")
        graph.add_edge(1, 0, 1, 0)
        assert edges_by_name(graph) == {"e0": 0}

    def test_repr(self):
        graph = FlowGraph()
        graph.add_node()
        assert "1 nodes" in repr(graph)
