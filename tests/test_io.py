"""Round-trip tests for the text serialization."""

import pytest

from repro.benchgen import SyntheticSpec, generate_design
from repro.io import load_design, load_placement, save_design, save_placement
from repro.model.placement import Placement


@pytest.fixture
def rich_design():
    return generate_design(
        SyntheticSpec(
            name="rt",
            cells_by_height={1: 40, 2: 6, 3: 3},
            density=0.5,
            seed=8,
            num_fences=1,
            with_rails=True,
            num_io_pins=3,
            with_edge_rules=True,
            nets_per_cell=0.5,
        )
    )


class TestDesignRoundTrip:
    def test_full_round_trip(self, rich_design, tmp_path):
        path = tmp_path / "design.txt"
        save_design(rich_design, path)
        loaded = load_design(path)

        assert loaded.name == rich_design.name
        assert loaded.num_rows == rich_design.num_rows
        assert loaded.num_sites == rich_design.num_sites
        assert loaded.num_cells == rich_design.num_cells
        assert loaded.site_width == rich_design.site_width
        assert loaded.power_parity == rich_design.power_parity

        for original, copy in zip(rich_design.cells, loaded.cells):
            assert original.name == copy.name
            assert original.cell_type.name == copy.cell_type.name
            assert original.gp_x == copy.gp_x
            assert original.fence_id == copy.fence_id
            assert original.fixed == copy.fixed

        assert len(loaded.fences) == len(rich_design.fences)
        for of, cf in zip(rich_design.fences, loaded.fences):
            assert of.rects == cf.rects

        assert (
            loaded.technology.edge_spacing.items()
            == rich_design.technology.edge_spacing.items()
        )
        assert len(loaded.rails.rails) == len(rich_design.rails.rails)
        assert len(loaded.rails.io_pins) == len(rich_design.rails.io_pins)
        assert len(loaded.netlist) == len(rich_design.netlist)

        # Pins survive with geometry.
        for ct in rich_design.technology.cell_types:
            loaded_ct = loaded.technology.type_named(ct.name)
            assert len(loaded_ct.pins) == len(ct.pins)
            for op, cp in zip(ct.pins, loaded_ct.pins):
                assert op.rect == cp.rect and op.layer == cp.layer

    def test_segments_identical(self, rich_design, tmp_path):
        path = tmp_path / "design.txt"
        save_design(rich_design, path)
        loaded = load_design(path)
        assert loaded.segments() == rich_design.segments()

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("design d rows 2 sites 10 site_width 0.2 "
                        "row_height 2.0 parity 0\nnonsense 1 2 3\n")
        with pytest.raises(ValueError, match="unknown keyword"):
            load_design(path)

    def test_missing_design_line_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no 'design' line"):
            load_design(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text(
            "# header\n\ndesign d rows 2 sites 10 site_width 0.2 "
            "row_height 2.0 parity 0  # trailing\n"
        )
        design = load_design(path)
        assert design.num_rows == 2


class TestPlacementRoundTrip:
    def test_round_trip(self, rich_design, tmp_path):
        placement = Placement.from_gp_rounded(rich_design)
        path = tmp_path / "placement.txt"
        save_placement(placement, path)
        loaded = load_placement(rich_design, path)
        assert loaded.x == placement.x
        assert loaded.y == placement.y

    def test_malformed_placement(self, rich_design, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("place 0 1\n")
        with pytest.raises(ValueError):
            load_placement(rich_design, path)
