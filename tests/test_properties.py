"""Hypothesis property tests over the core invariants.

These generate whole random designs/problems and assert the system-level
invariants the paper relies on:

* MGL always emits legal placements (overlap-free, in-fence, parity-ok);
* the matching stage is a pure permutation (multiset of positions
  conserved) and never increases the max displacement;
* the stage-3 MCF solution is optimal (equals the LP) and feasible;
* network simplex and SSP agree on random min-cost-flow instances.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checker import check_legal
from repro.core.flowopt import FixedRowOrderProblem, solve_lp, solve_mcf
from repro.core.matching import optimize_max_displacement
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.flow.graph import FlowGraph
from repro.flow.network_simplex import InfeasibleFlowError, solve_min_cost_flow
from repro.flow.ssp import solve_ssp
from repro.model.design import Design
from repro.model.technology import CellType, Technology


def build_design(seed: int, density: float) -> Design:
    rng = random.Random(seed)
    tech = Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("D2", 2, 2),
            CellType("T3", 3, 3),
        ]
    )
    rows = rng.choice([8, 12, 16])
    sites = rng.choice([40, 60])
    design = Design(tech, num_rows=rows, num_sites=sites, name=f"prop{seed}")
    target = density * rows * sites
    area = 0
    index = 0
    while area < target:
        cell_type = rng.choice(tech.cell_types)
        design.add_cell(
            f"c{index}",
            cell_type,
            rng.uniform(0, sites - cell_type.width),
            rng.uniform(0, rows - cell_type.height),
        )
        area += cell_type.width * cell_type.height
        index += 1
    return design


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), density=st.floats(0.2, 0.7))
def test_mgl_always_legal(seed, density):
    design = build_design(seed, density)
    placement = MGLegalizer(
        design, LegalizerParams(routability=False, scheduler_capacity=1)
    ).run()
    assert check_legal(placement).is_legal


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_matching_is_position_permutation(seed):
    design = build_design(seed, 0.5)
    placement = MGLegalizer(
        design, LegalizerParams(routability=False, scheduler_capacity=1)
    ).run()
    before_positions = sorted(zip(placement.x, placement.y))
    before_max = max(placement.displacements())
    optimize_max_displacement(placement)
    after_positions = sorted(zip(placement.x, placement.y))
    assert after_positions == before_positions  # pure permutation
    assert max(placement.displacements()) <= before_max + 1e-9
    assert check_legal(placement).is_legal


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    n=st.integers(1, 10),
    n0=st.integers(0, 5),
)
def test_flowopt_mcf_matches_lp_on_random_chains(seed, n, n0):
    rng = random.Random(seed)
    gps = sorted(rng.randint(0, 50) for _ in range(n))
    widths = [rng.randint(1, 4) for _ in range(n)]
    dys = [rng.randint(0, 4) for _ in range(n)]
    weights = [rng.randint(1, 3) for _ in range(n)]
    problem = FixedRowOrderProblem(
        cells=list(range(n)),
        weights=weights,
        widths=widths,
        gp_x=gps,
        dy=dys,
        lower=[0] * n,
        upper=[70 - w for w in widths],
        pairs=[(i, i + 1, widths[i]) for i in range(n - 1)],
    )
    mcf = solve_mcf(problem, n0)
    lp = solve_lp(problem, n0)
    assert problem.check_feasible(mcf) == []
    assert problem.objective(mcf, n0) == problem.objective(lp, n0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_solvers_agree_on_random_flows(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 8)
    graph = FlowGraph()
    for _ in range(n):
        graph.add_node()
    for _ in range(rng.randint(1, 16)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v, capacity=rng.randint(0, 6),
                           cost=rng.randint(-5, 8))
    total = 0
    for node in range(n - 1):
        supply = rng.randint(-2, 2)
        graph.supplies[node] = supply
        total += supply
    graph.supplies[n - 1] = -total

    try:
        ns = solve_min_cost_flow(graph)
    except InfeasibleFlowError:
        ns = None
    try:
        ssp = solve_ssp(graph)
    except InfeasibleFlowError:
        ssp = None
    assert (ns is None) == (ssp is None)
    if ns is not None:
        assert ns.cost == ssp.cost
