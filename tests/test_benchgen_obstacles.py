"""Tests for generator blockages, macros, and multi-rect fences."""

import pytest

from repro import LegalizerParams, legalize
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal


def rich_spec(**overrides):
    base = dict(
        name="rich",
        cells_by_height={1: 250, 2: 20, 3: 10},
        density=0.55,
        seed=17,
        num_blockages=3,
        num_macros=3,
    )
    base.update(overrides)
    return SyntheticSpec(**base)


class TestBlockages:
    def test_blockages_created(self):
        design = generate_design(rich_spec())
        assert 1 <= len(design.blockages) <= 3

    def test_blockages_split_segments(self):
        design = generate_design(rich_spec())
        blockage = design.blockages[0]
        row = int(blockage.ylo)
        segments = design.segments_in_row(row)
        # No segment may cover the blockage interior.
        mid = (blockage.xlo + blockage.xhi) / 2
        assert all(not (s.x_lo <= mid < s.x_hi) for s in segments)

    def test_blockages_avoid_fences(self):
        design = generate_design(rich_spec(num_fences=2))
        for blockage in design.blockages:
            for fence in design.fences:
                assert not fence.overlaps_rect(blockage)


class TestMacros:
    def test_macros_fixed(self):
        design = generate_design(rich_spec())
        macros = [c for c in design.cells if c.fixed]
        assert 1 <= len(macros) <= 3
        for macro in macros:
            assert macro.cell_type.name.startswith("MACRO")

    def test_macros_disjoint(self):
        from repro.model.geometry import Rect

        design = generate_design(rich_spec(num_macros=5))
        rects = [
            Rect(c.gp_x, c.gp_y, c.gp_x + c.cell_type.width,
                 c.gp_y + c.cell_type.height)
            for c in design.cells if c.fixed
        ]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.overlaps(b)

    def test_legalization_avoids_macros(self):
        design = generate_design(rich_spec())
        result = legalize(
            design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        assert check_legal(result.placement).is_legal


class TestMultiRectFences:
    def test_l_shape_on_big_chip(self):
        design = generate_design(
            rich_spec(
                cells_by_height={1: 900, 2: 60},
                num_fences=2,
                multi_rect_fences=True,
                num_blockages=0,
                num_macros=0,
            )
        )
        assert any(len(f.rects) == 2 for f in design.fences)

    def test_l_shape_legalizes(self):
        design = generate_design(
            rich_spec(
                cells_by_height={1: 700, 2: 40},
                num_fences=2,
                multi_rect_fences=True,
                num_blockages=0,
                num_macros=0,
            )
        )
        result = legalize(
            design, LegalizerParams(routability=False, scheduler_capacity=1)
        )
        assert check_legal(result.placement).is_legal


def test_everything_together():
    design = generate_design(
        rich_spec(
            num_fences=1,
            multi_rect_fences=True,
            with_rails=True,
            num_io_pins=5,
            with_edge_rules=True,
        )
    )
    design.validate()
    result = legalize(design, LegalizerParams(scheduler_capacity=2))
    assert check_legal(result.placement).is_legal
