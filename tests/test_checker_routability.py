"""Tests for edge-spacing and pin access/short counting (paper §2, Fig. 1)."""

import pytest

from repro.checker import count_routability_violations, placed_pin_rects
from repro.checker.routability import cell_is_flipped, required_gap
from repro.model.design import Design
from repro.model.geometry import Interval, Rect
from repro.model.placement import Placement
from repro.model.rails import HORIZONTAL, IOPin, Rail
from repro.model.technology import CellType, EdgeSpacingTable, PinShape, Technology


def pin_design():
    """One cell type with an M1 pin and an M2 pin; M2 horizontal rails."""
    tech = Technology(
        cell_types=[
            CellType(
                "P", 3, 1,
                pins=(
                    PinShape("m1", 1, Rect(0.05, 0.2, 0.25, 0.6)),
                    PinShape("m2", 2, Rect(0.3, 1.0, 0.45, 1.5)),
                ),
            ),
        ]
    )
    design = Design(tech, num_rows=8, num_sites=40, name="pins")
    # One M2 stripe at y in [4.0, 4.3): crosses row 2 (y 4..6).
    design.rails.add_rail(
        Rail(2, HORIZONTAL, offset=4.0, pitch=100.0, width=0.3,
             span=Interval(0, 16), extent=Interval(0, 8))
    )
    return design


class TestFigureOneSemantics:
    """The two violation kinds of paper Fig. 1."""

    def test_m1_pin_access_blocked_by_m2_rail(self):
        design = pin_design()
        design.add_cell("c", design.technology.type_named("P"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 2)  # row 2: y band [4, 6); M1 pin y [4.2, 4.6)
        report = count_routability_violations(placement)
        assert report.pin_access == 1  # M1 pin under the M2 stripe
        assert report.pin_short == 0   # M2 pin is above the stripe

    def test_m2_pin_short_with_m2_rail(self):
        design = pin_design()
        # Shift the rail up so it crosses the M2 pin instead (y 5.0..5.5).
        design.rails.rails[0] = Rail(
            2, HORIZONTAL, offset=5.1, pitch=100.0, width=0.3,
            span=Interval(0, 16), extent=Interval(0, 8),
        )
        design.add_cell("c", design.technology.type_named("P"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 2)
        report = count_routability_violations(placement)
        assert report.pin_short == 1
        assert report.pin_access == 0

    def test_clean_row_no_violations(self):
        design = pin_design()
        design.add_cell("c", design.technology.type_named("P"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 0)  # rows away from the stripe
        report = count_routability_violations(placement)
        assert report.total == 0

    def test_io_pin_blocks(self):
        design = pin_design()
        design.rails.rails.clear()
        design.rails.add_io_pin(IOPin("io", 2, Rect(1.0, 1.0, 1.2, 1.4)))
        design.add_cell("c", design.technology.type_named("P"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 0)  # M1 pin at x [1.05, 1.25), y [0.2, 0.6)?
        # Place so the M2 pin overlaps the IO pin: pin m2 offset (0.3, 1.0).
        placement.move(0, 4, 0)  # x_len = 0.8; m2 pin x [1.1, 1.25) y [1.0,1.5)
        report = count_routability_violations(placement)
        assert report.pin_short >= 1


class TestFlipping:
    def test_odd_height_flips_on_off_parity_row(self):
        design = pin_design()
        cell = design.add_cell("c", design.technology.type_named("P"), 0, 0)
        assert not cell_is_flipped(design, cell, 0)
        assert cell_is_flipped(design, cell, 1)

    def test_flip_mirrors_pin_geometry(self):
        design = pin_design()
        cell = design.add_cell("c", design.technology.type_named("P"), 0, 0)
        placement = Placement(design)
        placement.move(cell, 0, 1)  # odd row -> flipped
        rects = dict(
            (name, rect) for name, _layer, rect in
            placed_pin_rects(design, placement, cell)
        )
        # Unflipped m1 pin y-range is [0.2, 0.6) within a 2.0 cell; flipped
        # it becomes [1.4, 1.8) relative to the row base at y=2.0.
        assert rects["m1"].ylo == pytest.approx(2.0 + 1.4)
        assert rects["m1"].yhi == pytest.approx(2.0 + 1.8)


class TestEdgeSpacing:
    def test_violation_counted(self, edge_tech):
        design = Design(edge_tech, num_rows=2, num_sites=30, name="edges")
        design.add_cell("a", edge_tech.type_named("A"), 0, 0)
        design.add_cell("b", edge_tech.type_named("A"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 0)
        placement.move(1, 7, 0)  # abutting, but rule demands 1 site
        report = count_routability_violations(placement)
        assert report.edge_violations == 1

    def test_satisfied_gap_ok(self, edge_tech):
        design = Design(edge_tech, num_rows=2, num_sites=30, name="edges")
        design.add_cell("a", edge_tech.type_named("A"), 0, 0)
        design.add_cell("b", edge_tech.type_named("A"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 0)
        placement.move(1, 8, 0)
        assert count_routability_violations(placement).edge_violations == 0

    def test_unruled_pair_needs_no_gap(self, edge_tech):
        design = Design(edge_tech, num_rows=2, num_sites=30, name="edges")
        design.add_cell("a", edge_tech.type_named("A"), 0, 0)
        design.add_cell("c", edge_tech.type_named("C"), 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 0)
        placement.move(1, 7, 0)
        assert count_routability_violations(placement).edge_violations == 0

    def test_multirow_pair_counted_once(self, edge_tech):
        design = Design(edge_tech, num_rows=4, num_sites=30, name="edges")
        big = CellType("BIG", 3, 2, left_edge=1, right_edge=1)
        design.technology.add_cell_type(big)
        design.add_cell("a", big, 0, 0)
        design.add_cell("b", big, 0, 0)
        placement = Placement(design)
        placement.move(0, 5, 0)
        placement.move(1, 8, 0)  # gap 0 on both rows, rule needs 1
        report = count_routability_violations(placement)
        assert report.edge_violations == 1

    def test_required_gap_helper(self, edge_tech):
        design = Design(edge_tech, num_rows=2, num_sites=30, name="edges")
        a = design.add_cell("a", edge_tech.type_named("A"), 0, 0)
        b = design.add_cell("b", edge_tech.type_named("B"), 0, 0)
        assert required_gap(design, a, b) == 1
        assert required_gap(design, a, a) == 1
        assert required_gap(design, b, b) == 2
