"""Tests for sharded legalization (``repro.core.shard``).

The contracts, in order of importance:

* ``shards=1`` reproduces the unsharded sequential path **bit-exactly**
  (including against the committed bench hashes);
* for a fixed topology the placement is bit-identical for any worker
  count — shard workers are an execution detail, never a semantic one;
* topology invariants: every movable cell lands in exactly one shard,
  fence regions are never split across bands, halos clamp to the chip;
* sharded placements are legal, and failures (crashed workers,
  over-full bands) degrade to slower, never to wrong or lost cells.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.core.shard as shard_mod
from repro.benchgen import iccad2017_suite
from repro.checker import check_legal
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.core.shard import (
    compute_topology,
    interior_params,
    run_sharded_mgl,
)
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology
from repro.obs.manifest import placement_digest
from repro.obs.tracer import SpanTracer
from repro.perf import PerfRecorder


def build_design(seed: int, density: float, with_fence: bool) -> Design:
    """A random mixed-height design, optionally with one fence region."""
    rng = random.Random(seed)
    tech = Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("D2", 2, 2),
            CellType("T3", 3, 3),
        ]
    )
    rows = rng.choice([8, 12, 16])
    sites = rng.choice([40, 60])
    design = Design(tech, num_rows=rows, num_sites=sites, name=f"sh{seed}")
    fences = []
    if with_fence:
        ylo = rng.randrange(0, rows - 4)
        fence = FenceRegion(1, "f1", [Rect(4, ylo, sites // 2, ylo + 4)])
        design.add_fence(fence)
        fences.append(fence)
    target = density * rows * sites
    fence_budget = (
        0.5 * sum(r.area for r in fences[0].rects) if fences else 0.0
    )
    area = 0
    index = 0
    while area < target:
        cell_type = rng.choice(tech.cell_types)
        cell_area = cell_type.width * cell_type.height
        fence_id = 0
        if (
            fences and rng.random() < 0.2
            and cell_type.height <= 3 and fence_budget >= cell_area
        ):
            fence_id = 1
            fence_budget -= cell_area
        if fence_id:
            rect = fences[0].rects[0]
            gx = rng.uniform(rect.xlo, rect.xhi - cell_type.width)
            gy = rng.uniform(rect.ylo, rect.yhi - cell_type.height)
        else:
            gx = rng.uniform(0, sites - cell_type.width)
            gy = rng.uniform(0, rows - cell_type.height)
        design.add_cell(f"c{index}", cell_type, gx, gy, fence_id=fence_id)
        area += cell_area
        index += 1
    return design


def sharded_positions(design, shards, halo, workers=0):
    params = LegalizerParams(
        routability=False,
        shards=shards,
        shard_halo_rows=halo,
        scheduler_workers=workers,
    )
    placement, legalizer = run_sharded_mgl(design, params)
    return (list(placement.x), list(placement.y)), legalizer


class TestTopology:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10_000),
        density=st.floats(0.2, 0.55),
        with_fence=st.booleans(),
        shards=st.integers(1, 6),
        halo=st.integers(0, 3),
    )
    def test_partition_invariants(self, seed, density, with_fence, shards, halo):
        design = build_design(seed, density, with_fence)
        topology = compute_topology(design, shards, halo)

        # Boundaries: strictly increasing, spanning the whole die.
        bounds = topology.boundaries
        assert bounds[0] == 0 and bounds[-1] == design.num_rows
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert len(topology.shards) == len(bounds) - 1
        assert 1 <= len(topology.shards) <= shards

        # Every movable cell in exactly one shard, none lost.
        movable = set(design.movable_cells())
        seen = [cell for s in topology.shards for cell in s.cells]
        assert len(seen) == len(set(seen))
        assert set(seen) == movable

        # Fences are never split: no boundary strictly inside a fence
        # bounding box's row span.
        import math

        for fence in design.fences:
            box = fence.bounding_box
            interior = range(
                int(math.floor(box.ylo)) + 1, int(math.ceil(box.yhi))
            )
            assert not (set(interior) & set(bounds[1:-1]))

        # Halo rows clamp to the chip and match the interiors.
        for s in topology.shards:
            assert s.row_lo == bounds[s.index]
            assert s.row_hi == bounds[s.index + 1]
            assert s.halo_lo == max(0, s.row_lo - halo)
            assert s.halo_hi == min(design.num_rows, s.row_hi + halo)

        # Deterministic: recomputation is bit-identical.
        assert compute_topology(design, shards, halo) == topology

    def test_shard_count_capped_by_tallest_cell(self, small_design):
        # small_design has height-4 cells in 20 rows: at most 5 bands.
        topology = compute_topology(small_design, 50, 1)
        assert len(topology.shards) <= 5

    def test_halo_bands_cover_cut_neighborhoods(self, small_design):
        topology = compute_topology(small_design, 4, 2)
        cuts = topology.boundaries[1:-1]
        bands = topology.halo_bands()
        assert len(bands) == len(cuts)
        for cut, (lo, hi) in zip(cuts, bands):
            assert lo == max(0, cut - 2) and hi == min(20, cut + 2)
        assert compute_topology(small_design, 4, 0).halo_bands() == []

    def test_as_dict_shape(self, fence_design):
        topology = compute_topology(fence_design, 3, 1)
        doc = topology.as_dict()
        assert doc["shards"] == len(topology.shards)
        assert doc["boundaries"] == list(topology.boundaries)
        assert [band["cells"] for band in doc["bands"]] == [
            len(s.cells) for s in topology.shards
        ]


class TestShards1Identity:
    def test_matches_sequential_path(self, small_design, fence_design):
        for design in (small_design, fence_design):
            params = LegalizerParams(routability=False)
            baseline = MGLegalizer(design, params).run()
            sharded, legalizer = sharded_positions(design, shards=1, halo=2)
            assert sharded == (list(baseline.x), list(baseline.y))
            assert legalizer.stats["shard_count"] == 1
            assert legalizer.stats["shard_reconciled"] == 0

    def test_matches_committed_bench_hashes(self):
        """shards=1 reproduces the committed BENCH_mgl.json placements."""
        import json
        from pathlib import Path

        hashes = json.loads(
            (Path(__file__).parent.parent / "BENCH_mgl.json").read_text()
        )["hashes"]
        for name in ("des_perf_b_md2", "fft_a_md2"):
            case = iccad2017_suite(scale=0.004, names=[name])[0]
            placement, _ = run_sharded_mgl(case.build(), LegalizerParams())
            assert placement_digest(placement) == hashes[f"{name}@0.004"]


class TestWorkerInvariance:
    def test_fixed_topology_any_worker_count(self, small_design):
        serial, _ = sharded_positions(small_design, shards=3, halo=2, workers=0)
        for workers in (1, 2):
            pooled, legalizer = sharded_positions(
                small_design, shards=3, halo=2, workers=workers
            )
            assert pooled == serial, f"diverged at workers={workers}"
            assert legalizer.stats["shard_worker_failures"] == 0
            assert legalizer.stats["shard_workers_spawned"] == min(
                workers, legalizer.stats["shard_count"]
            )

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), density=st.floats(0.25, 0.5))
    def test_worker_invariance_property(self, seed, density):
        design = build_design(seed, density, with_fence=True)
        serial, _ = sharded_positions(design, shards=3, halo=1, workers=0)
        pooled, _ = sharded_positions(design, shards=3, halo=1, workers=2)
        assert pooled == serial

    def test_trace_structure_identical_across_workers(self, small_design):
        hashes = []
        for workers in (0, 2):
            tracer = SpanTracer()
            params = LegalizerParams(
                routability=False, shards=3, shard_halo_rows=2,
                scheduler_workers=workers,
            )
            run_sharded_mgl(small_design, params, tracer=tracer)
            hashes.append(tracer.structure_hash())
            names = [span.name for span in tracer.roots]
            assert names == ["shard_mgl"]
        assert hashes[0] == hashes[1]


class TestShardedLegality:
    def test_legal_and_complete(self, small_design, fence_design):
        for design in (small_design, fence_design):
            for shards, halo in ((2, 2), (3, 1), (4, 0)):
                params = LegalizerParams(
                    routability=False, shards=shards, shard_halo_rows=halo
                )
                placement, legalizer = run_sharded_mgl(design, params)
                report = check_legal(placement)
                assert report.is_legal, report.all_messages()
                movable = sum(1 for _ in design.movable_cells())
                assert legalizer.stats["cells_placed"] == movable

    def test_overfull_band_defers_and_recovers(self):
        """Cells that do not fit their band spill into reconciliation."""
        tech = Technology(cell_types=[CellType("W8", 8, 1)])
        design = Design(tech, num_rows=10, num_sites=40, name="spill")
        for index in range(30):
            design.add_cell(f"c{index}", tech.cell_types[0], 0.0, 0.0)
        # All 30 cells target band 0 (rows [0, 4) at 3 shards, halo 0):
        # 160 sites of capacity against 240 of demand.
        placement, legalizer = run_sharded_mgl(
            design,
            LegalizerParams(routability=False, shards=3, shard_halo_rows=0),
        )
        assert legalizer.stats["shard_count"] == 3
        assert legalizer.stats["shard_deferred"] > 0
        assert legalizer.stats["shard_halo_cells"] == 0
        report = check_legal(placement)
        assert report.is_legal, report.all_messages()
        assert legalizer.stats["cells_placed"] == 30

    def test_reconciled_set_is_halo_plus_deferred(self, small_design):
        _positions, legalizer = sharded_positions(
            small_design, shards=3, halo=2
        )
        stats = legalizer.stats
        assert stats["shard_reconciled"] == (
            stats["shard_halo_cells"] + stats["shard_deferred"]
        )
        assert stats["shard_halo_cells"] > 0  # dense halos are populated


class TestFailureFallbacks:
    def test_crashed_workers_degrade_to_in_process(
        self, small_design, monkeypatch
    ):
        """Every worker dying still yields the exact serial answer."""
        serial, _ = sharded_positions(small_design, shards=3, halo=2, workers=0)

        def crashing_worker(conn):
            raise RuntimeError("injected shard worker crash")

        monkeypatch.setattr(shard_mod, "shard_worker_main", crashing_worker)
        pooled, legalizer = sharded_positions(
            small_design, shards=3, halo=2, workers=2
        )
        assert pooled == serial
        assert legalizer.stats["shard_worker_failures"] >= 1
        assert legalizer.stats["shard_fallbacks"] == 3

    def test_spawn_failure_degrades_to_in_process(
        self, small_design, monkeypatch
    ):
        serial, _ = sharded_positions(small_design, shards=3, halo=2, workers=0)

        def no_context():
            raise RuntimeError("no multiprocessing today")

        monkeypatch.setattr(shard_mod, "_pick_context", no_context)
        pooled, legalizer = sharded_positions(
            small_design, shards=3, halo=2, workers=2
        )
        assert pooled == serial
        assert legalizer.stats["shard_worker_failures"] == 2
        assert legalizer.stats["shard_workers_spawned"] == 0

    def test_retired_workers_hit_the_metrics_registry(
        self, small_design, monkeypatch
    ):
        def crashing_worker(conn):
            raise RuntimeError("injected shard worker crash")

        monkeypatch.setattr(shard_mod, "shard_worker_main", crashing_worker)
        recorder = PerfRecorder()
        params = LegalizerParams(
            routability=False, shards=3, shard_halo_rows=2,
            scheduler_workers=2,
        )
        run_sharded_mgl(small_design, params, recorder=recorder)
        assert recorder.registry.counters["shard.worker_retired"] >= 1


class TestObservability:
    def test_metrics_and_topology_recorded(self, small_design):
        recorder = PerfRecorder()
        params = LegalizerParams(
            routability=False, shards=3, shard_halo_rows=2
        )
        _placement, legalizer = run_sharded_mgl(
            small_design, params, recorder=recorder
        )
        counters = recorder.registry.counters
        assert counters["shard.halo_relegalized"] == (
            legalizer.stats["shard_halo_cells"]
        )
        assert counters["shard.deferred"] == legalizer.stats["shard_deferred"]
        histogram = recorder.registry.histogram("shard.occupancy")
        assert histogram.total == legalizer.stats["shard_count"]
        assert legalizer.shard_topology is not None
        assert legalizer.shard_topology.as_dict()["shards"] == 3

    def test_manifest_records_topology(self, small_design, tmp_path):
        from repro.obs.manifest import (
            build_manifest, diff_manifests, load_manifest, write_manifest,
        )

        params = LegalizerParams(
            routability=False, shards=3, shard_halo_rows=2
        )
        placement, legalizer = run_sharded_mgl(small_design, params)
        manifest = build_manifest(
            small_design, params, placement,
            shard_topology=legalizer.shard_topology.as_dict(),
        )
        path = tmp_path / "run.manifest.json"
        write_manifest(manifest, path)
        loaded = load_manifest(path)
        assert loaded["shard_topology"] == legalizer.shard_topology.as_dict()
        other = dict(manifest)
        other["shard_topology"] = compute_topology(
            small_design, 2, 2
        ).as_dict()
        mismatches = diff_manifests(manifest, other)
        assert any("shard_topology" in line for line in mismatches)

    def test_legalizer_result_carries_topology(self, small_design):
        from repro.core.legalizer import Legalizer

        params = LegalizerParams(
            routability=False, shards=2, shard_halo_rows=1
        )
        result = Legalizer(small_design, params).run()
        assert result.shard_topology is not None
        assert result.shard_topology["shards"] >= 1
        unsharded = Legalizer(
            small_design, LegalizerParams(routability=False)
        ).run()
        assert unsharded.shard_topology is None


class TestParamsAndCli:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            LegalizerParams(shards=0).validate()
        with pytest.raises(ValueError):
            LegalizerParams(shard_halo_rows=-1).validate()

    def test_interior_params_strip_nested_parallelism(self):
        params = LegalizerParams(
            shards=4, shard_halo_rows=3, scheduler_workers=8,
            scheduler_threads=4, scheduler_capacity=16,
        )
        inner = interior_params(params)
        assert inner.shards == 1
        assert inner.scheduler_workers == 0
        assert inner.scheduler_threads == 0
        assert inner.scheduler_capacity == 1
        assert inner.shard_halo_rows == 3  # halo is topology, kept as-is

    def test_cli_shards_flag(self, tmp_path, capsys):
        from repro.cli import main

        design_file = tmp_path / "design.txt"
        assert main([
            "generate", "clishard", "-o", str(design_file),
            "--cells", "1:80", "2:8", "--density", "0.5", "--seed", "3",
        ]) == 0
        placement_file = tmp_path / "placement.txt"
        code = main([
            "legalize", str(design_file), "-o", str(placement_file),
            "--no-routability", "--shards", "2", "--halo-rows", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards:" in out
        assert main([
            "check", str(design_file), str(placement_file)
        ]) == 0
