"""Shared fixtures: small deterministic designs used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.rails import standard_pg_grid
from repro.model.technology import CellType, EdgeSpacingTable, Technology


@pytest.fixture
def basic_tech() -> Technology:
    """A mixed-height library without pins or edge rules."""
    return Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("S4", 4, 1),
            CellType("D3", 3, 2),
            CellType("T3", 3, 3),
            CellType("Q4", 4, 4),
        ]
    )


@pytest.fixture
def edge_tech() -> Technology:
    """A library with edge-spacing rules."""
    return Technology(
        cell_types=[
            CellType("A", 2, 1, left_edge=1, right_edge=1),
            CellType("B", 3, 1, left_edge=2, right_edge=2),
            CellType("C", 4, 2),
        ],
        edge_spacing=EdgeSpacingTable([(1, 1, 1), (2, 2, 2), (1, 2, 1)]),
    )


@pytest.fixture
def empty_design(basic_tech) -> Design:
    """20 rows x 100 sites, no cells."""
    return Design(basic_tech, num_rows=20, num_sites=100, name="empty")


def fill_random(design: Design, density: float, seed: int = 3,
                fence_fraction: float = 0.0) -> None:
    """Populate a design with random cells up to ``density``."""
    rng = random.Random(seed)
    fences = design.fences
    budgets = {
        f.fence_id: 0.6 * sum(r.area for r in f.rects) for f in fences
    }
    target = density * design.num_rows * design.num_sites
    area = 0.0
    index = 0
    while area < target:
        cell_type = rng.choice(design.technology.cell_types)
        cell_area = cell_type.width * cell_type.height
        fence_id = 0
        if fences and rng.random() < fence_fraction:
            fence = rng.choice(fences)
            if budgets[fence.fence_id] >= cell_area:
                fence_id = fence.fence_id
                budgets[fence.fence_id] -= cell_area
        if fence_id:
            rect = design.fence_region(fence_id).rects[0]
            gx = rng.uniform(rect.xlo, max(rect.xlo, rect.xhi - cell_type.width))
            gy = rng.uniform(rect.ylo, max(rect.ylo, rect.yhi - cell_type.height))
        else:
            gx = rng.uniform(0, design.num_sites - cell_type.width)
            gy = rng.uniform(0, design.num_rows - cell_type.height)
        design.add_cell(f"c{index}", cell_type, gx, gy, fence_id=fence_id)
        area += cell_area
        index += 1


@pytest.fixture
def small_design(basic_tech) -> Design:
    """~55% dense, 20x100, no fences — the workhorse fixture."""
    design = Design(basic_tech, num_rows=20, num_sites=100, name="small")
    fill_random(design, 0.55, seed=11)
    return design


@pytest.fixture
def fence_design(basic_tech) -> Design:
    """A design with one explicit fence holding ~15% of the cells."""
    design = Design(basic_tech, num_rows=20, num_sites=100, name="fenced")
    design.add_fence(FenceRegion(1, "f1", [Rect(20, 4, 60, 14)]))
    fill_random(design, 0.55, seed=12, fence_fraction=0.3)
    return design


@pytest.fixture
def rail_design(edge_tech) -> Design:
    """A design with a P/G grid and pinned cell types."""
    from repro.model.rails import IOPin
    from repro.model.technology import PinShape

    pinned = Technology(
        cell_types=[
            CellType(
                "P2", 2, 1,
                pins=(PinShape("a", 1, Rect(0.05, 0.2, 0.25, 0.5)),
                      PinShape("z", 2, Rect(0.2, 1.0, 0.35, 1.4))),
            ),
            CellType(
                "P4", 4, 2,
                pins=(PinShape("a", 1, Rect(0.1, 0.4, 0.3, 0.8)),),
            ),
        ]
    )
    design = Design(pinned, num_rows=12, num_sites=60, name="rails")
    design.rails = standard_pg_grid(
        design.chip_rect_length_units, design.row_height,
        m2_pitch_rows=4, m3_pitch=4.0,
    )
    design.rails.add_io_pin(IOPin("io0", 2, Rect(3.0, 5.0, 3.8, 5.8)))
    fill_random(design, 0.4, seed=13)
    return design
