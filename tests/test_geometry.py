"""Unit tests for geometry primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.model.geometry import (
    Interval,
    Point,
    Rect,
    iter_pairs,
    merge_intervals,
    subtract_intervals,
)


class TestPoint:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_manhattan_symmetric(self):
        a, b = Point(-2, 5), Point(1, -1)
        assert a.manhattan(b) == b.manhattan(a)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)


class TestInterval:
    def test_length(self):
        assert Interval(2, 5).length == 3

    def test_empty_length_zero(self):
        assert Interval(5, 2).length == 0
        assert Interval(5, 2).empty

    def test_contains_half_open(self):
        iv = Interval(2, 5)
        assert iv.contains(2)
        assert iv.contains(4.9)
        assert not iv.contains(5)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))
        assert Interval(0, 1).contains_interval(Interval(7, 3))  # empty

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))
        assert not Interval(0, 5).overlaps(Interval(5, 8))  # touching

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 2).intersect(Interval(5, 7)).empty

    def test_shifted(self):
        assert Interval(1, 3).shifted(2) == Interval(3, 5)

    def test_clamp(self):
        iv = Interval(2, 6)
        assert iv.clamp(0) == 2
        assert iv.clamp(9) == 6
        assert iv.clamp(4) == 4

    def test_union_span(self):
        assert Interval(0, 2).union_span(Interval(5, 7)) == Interval(0, 7)


class TestRect:
    def test_dimensions(self):
        rect = Rect(1, 2, 4, 7)
        assert rect.width == 3
        assert rect.height == 5
        assert rect.area == 15

    def test_empty(self):
        assert Rect(3, 0, 3, 5).empty
        assert not Rect(0, 0, 1, 1).empty

    def test_contains_point_half_open(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.contains_point(0, 0)
        assert not rect.contains_point(4, 2)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert not outer.contains_rect(Rect(5, 5, 11, 8))
        assert outer.contains_rect(Rect(20, 20, 20, 20))  # empty

    def test_overlaps_interior_only(self):
        assert Rect(0, 0, 4, 4).overlaps(Rect(3, 3, 6, 6))
        assert not Rect(0, 0, 4, 4).overlaps(Rect(4, 0, 6, 4))  # abutting

    def test_intersect(self):
        hit = Rect(0, 0, 4, 4).intersect(Rect(2, 1, 6, 3))
        assert hit == Rect(2, 1, 4, 3)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_inflated(self):
        assert Rect(2, 2, 4, 4).inflated(1) == Rect(1, 1, 5, 5)

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_union_span(self):
        assert Rect(0, 0, 1, 1).union_span(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)


class TestSubtractIntervals:
    def test_no_holes(self):
        assert subtract_intervals(Interval(0, 10), []) == [Interval(0, 10)]

    def test_middle_hole(self):
        pieces = subtract_intervals(Interval(0, 10), [Interval(3, 5)])
        assert pieces == [Interval(0, 3), Interval(5, 10)]

    def test_covering_hole(self):
        assert subtract_intervals(Interval(2, 5), [Interval(0, 10)]) == []

    def test_multiple_holes(self):
        pieces = subtract_intervals(
            Interval(0, 10), [Interval(8, 12), Interval(1, 2), Interval(4, 5)]
        )
        assert pieces == [Interval(0, 1), Interval(2, 4), Interval(5, 8)]

    def test_overlapping_holes(self):
        pieces = subtract_intervals(
            Interval(0, 10), [Interval(2, 6), Interval(4, 8)]
        )
        assert pieces == [Interval(0, 2), Interval(8, 10)]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=8,
        )
    )
    def test_property_no_hole_point_remains(self, raw_holes):
        holes = [Interval(min(a, b), max(a, b)) for a, b in raw_holes]
        pieces = subtract_intervals(Interval(0, 50), holes)
        # Pieces are disjoint, sorted, inside the base, and avoid holes.
        for left, right in zip(pieces, pieces[1:]):
            assert left.hi <= right.lo
        for piece in pieces:
            assert 0 <= piece.lo < piece.hi <= 50
            mid = (piece.lo + piece.hi) / 2
            assert not any(h.contains(mid) for h in holes)
        # Total measure is preserved.
        merged = merge_intervals(holes)
        hole_measure = sum(
            max(0.0, min(h.hi, 50) - max(h.lo, 0)) for h in merged
        )
        assert sum(p.length for p in pieces) == pytest.approx(50 - hole_measure)


class TestMergeIntervals:
    def test_merges_overlapping(self):
        merged = merge_intervals([Interval(0, 3), Interval(2, 5), Interval(7, 9)])
        assert merged == [Interval(0, 5), Interval(7, 9)]

    def test_merges_touching(self):
        assert merge_intervals([Interval(0, 2), Interval(2, 4)]) == [Interval(0, 4)]

    def test_drops_empty(self):
        assert merge_intervals([Interval(5, 2)]) == []


def test_iter_pairs():
    assert list(iter_pairs([1, 2, 3])) == [(1, 2), (2, 3)]
    assert list(iter_pairs([1])) == []
    assert list(iter_pairs([])) == []
