"""Fixture: a declared purity contract that writes shared state (C002).

The test config declares ``Engine.evaluate(scratch)`` as a pure
contract: writes through the ``scratch`` parameter are sanctioned,
everything else shared is off-limits.
"""


class Meter:
    """Transitive accomplice: mutates the counter object it was given."""

    def __init__(self, counts):
        self.counts = counts

    def tick(self, key):
        self.counts[key] = self.counts.get(key, 0) + 1


class Engine:
    def __init__(self):
        self.history = []
        self.stats = {}

    def evaluate(self, candidate, scratch=None):
        cost = candidate * 2
        self.history.append(cost)       # direct shared write
        meter = Meter(self.stats)       # fresh local, shared capture
        meter.tick("evaluate")          # lands on self.stats
        if scratch is not None:
            scratch["cost"] = cost      # sanctioned scratch write
        return cost
