"""Fixture: writing Store internals outside its home module (M001)."""

from tests.lint_fixtures.m001_shared import Store


def corrupt_typed(store: Store):
    store._entries[0] = None            # typed receiver, private internals
    store.journal.append(("hack",))     # mutating call on internals
    return store


def corrupt_untyped(store):
    store._index["k"] = 0               # private-attr fallback, no types
    return store
