"""Fixture: ordering decisions on deterministic keys (D005-clean)."""

import heapq
import os


def order_by_value(cells):
    return sorted(cells, key=lambda cell: (cell.x, cell.name))


def identity_outside_ordering(cells):
    # id()/os.environ are fine as long as they never order anything.
    fingerprints = {id(cell) for cell in cells}
    banner = os.environ.get("BANNER", "")
    return len(fingerprints), banner


def rebound_name_is_clean(cells):
    tag = os.environ.get("HOST_TAG", "")
    tag = "fixed"                       # rebind clears the taint
    cells.sort(key=lambda cell: (cell, tag))
    return cells


def heap_by_value(cells):
    heap = []
    for index, cell in enumerate(cells):
        heapq.heappush(heap, (cell, index))
    return [heapq.heappop(heap) for _ in cells]
