"""Fixture home module for M001: the Store owns its internals.

The test config protects ``tests.lint_fixtures.m001_shared.Store`` —
only code in this file may write ``_entries``/``_index``/``journal``.
"""


class Store:
    def __init__(self):
        self._entries = []
        self._index = {}
        self.journal = []

    def add(self, key, value):
        self._index[key] = len(self._entries)
        self._entries.append(value)
        self.journal.append(("add", key))

    def get(self, key):
        return self._entries[self._index[key]]
