"""Fixture: seeded randomness only — D001 must stay silent."""

import random

import numpy as np


def shuffle_order(values, seed):
    rng = random.Random(seed)
    rng.shuffle(values)
    return rng.randint(0, 9)


def noise(seed: int) -> float:
    gen = np.random.default_rng(seed)
    return float(gen.normal())
