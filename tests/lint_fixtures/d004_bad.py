"""Fixture: wall-clock reads — each call trips D004."""

import time
from datetime import datetime


def stamp_result(result):
    started = time.time()               # wall clock
    result["started"] = started
    result["when"] = datetime.now()     # wall clock
    result["label"] = time.ctime()      # wall clock
    return result
