"""Fixture: exact integer/bool reductions in selection keys (A003 clean)."""

import heapq

import numpy as np


def pick(costs):
    hits = np.zeros((4, 4), dtype=np.int64)
    mask = hits > 0
    counts = np.sum(mask, axis=0)           # bool sum is exact
    best = np.argmin(counts)
    order = sorted(range(4), key=lambda i: float(costs[i]))
    heap = []
    heapq.heappush(heap, (int(counts[0]), 0))
    return best, order, heap
