"""Fixture: nondeterministic values steering order (D005)."""

import heapq
import os


def order_by_identity(cells):
    return sorted(cells, key=id)                        # builtin id as key


def order_by_hash(cells):
    return sorted(cells, key=lambda cell: hash(cell))   # hash() in the key


def order_by_environment(cells):
    tag = os.environ["HOST_TAG"]
    cells.sort(key=lambda cell: (cell, tag))            # env-tainted key
    return cells


def heap_by_identity(cells):
    heap = []
    for cell in cells:
        token = id(cell)
        heapq.heappush(heap, (token, cell))             # id-tainted item
    return [heapq.heappop(heap) for _ in cells]
