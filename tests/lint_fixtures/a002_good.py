"""Fixture: single-precision-consistent arithmetic (A002 clean)."""

import numpy as np


def widths(sites):
    wide = np.asarray(sites, dtype=np.float64)
    also = np.ones(4)                       # default float64
    span = wide + also
    narrow = np.zeros(4, dtype=np.float32)
    scaled = narrow * np.float32(2.0)       # f32 * f32: no promotion
    return span, scaled
