"""Fixture: every statement here trips D001 (unseeded randomness)."""

import random

import numpy as np
from random import randint


def shuffle_order(values):
    random.shuffle(values)          # global-state module call
    return randint(0, 9)            # from-imported module call


def noise():
    return np.random.normal()       # legacy numpy global RandomState


def make_generators():
    a = random.Random()             # unseeded constructor
    b = np.random.default_rng()     # unseeded constructor
    c = random.SystemRandom(7)      # entropy-based, never reproducible
    return a, b, c
