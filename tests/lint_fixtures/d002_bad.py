"""Fixture: unordered iteration — each loop/comprehension trips D002."""


def process(mapping, items):
    for key in mapping.keys():          # dict.keys() view
        print(key)
    for value in {1, 2, 3}:             # set literal
        print(value)
    tags = set(items)
    for tag in tags:                    # name bound to a set
        print(tag)
    return [key for key in mapping.keys()]  # comprehension over keys()
