"""Fixture: pinned sort kinds and sides; list.sort is stable (A001 clean)."""

import numpy as np


def rank(values):
    order = np.argsort(values, kind="stable")
    idx = np.searchsorted(values, 3.0, side="left")
    items = list(values)
    items.sort()                            # Python list sort: stable
    arr = np.zeros(4)
    arr.sort(kind="stable")
    return order, idx, items, arr
