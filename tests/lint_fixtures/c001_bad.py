"""Fixture: thread-pool submissions that write shared state (C001)."""

from concurrent.futures import ThreadPoolExecutor


class Worker:
    def __init__(self):
        self.count = 0
        self.log = []

    def work(self, item):
        self.count += 1             # read-modify-write on shared self
        self.log.append(item)       # mutating call on shared self.log
        return item * 2

    def run(self, items, callbacks):
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(self.work, item) for item in items]
            extra = pool.submit(callbacks[0], items)   # unresolvable target
        return [future.result() for future in futures] + [extra.result()]
