"""Fixture: thread-pool submissions that write shared state (C001)."""

from concurrent.futures import ThreadPoolExecutor


class Worker:
    def __init__(self):
        self.count = 0
        self.log = []

    def work(self, item):
        self.count += 1             # read-modify-write on shared self
        self.log.append(item)       # mutating call on shared self.log
        return item * 2

    def run(self, items, callbacks):
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(self.work, item) for item in items]
            extra = pool.submit(callbacks[0], items)   # unresolvable target
        return [future.result() for future in futures] + [extra.result()]


class Sink:
    """Innocent-looking helper: mutates whatever list it was given."""

    def __init__(self, log):
        self.log = log

    def push(self, item):
        self.log.append(item)


class Collector:
    def __init__(self):
        self.events = []

    def collect(self, item):
        # The sink is a *fresh local*, but it captures shared state: its
        # push() lands on self.events.  The old per-file walker missed
        # this; constructor capture analysis must not.
        sink = Sink(self.events)
        sink.push(item)
        return item

    def run(self, items):
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(self.collect, item) for item in items]
        return [future.result() for future in futures]
