"""Fixture: trial-path protected mutations with no restore (E001).

The ``Occupancy`` here stands in for the real one; per-test configs
list it under ``mutation-protected`` and this directory under
``trial-modules``.  ``commit_moves`` is only judged when a test also
declares it in ``mutation-commits`` (atomicity check).
"""


class Occupancy:
    def __init__(self):
        self.rows = {}

    def add(self, cell):
        self.rows[cell] = True

    def remove(self, cell):
        self.rows.pop(cell, None)


def probe(cell):
    if cell < 0:
        raise ValueError("bad cell")
    return cell * 2


class Shuffler:
    def __init__(self, occupancy):
        self.occupancy = occupancy

    def trial(self, cell):
        self.occupancy.add(cell)        # shared receiver, probe may raise
        cost = probe(cell)
        self.occupancy.remove(cell)     # unreached when probe raises
        return cost


def helper_trial(occupancy, cell):
    occupancy.add(cell)                 # param receiver: judged at call sites
    return probe(cell)


class Driver:
    def __init__(self):
        self.occupancy = Occupancy()

    def run(self, cell):
        return helper_trial(self.occupancy, cell)   # shared state passed in


def commit_moves(occupancy, moves):
    for cell in moves:
        occupancy.add(cell)
    if not moves:
        raise ValueError("empty commit")            # raise after mutations
    return len(moves)
