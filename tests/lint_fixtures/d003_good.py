"""Fixture: integer/epsilon comparisons — D003 must stay silent."""

import math


def same_site(a: int, b: int) -> bool:
    return a == b                       # exact integer compare is fine


def same_slope(a: float, b: float) -> bool:
    return math.isclose(a, b, abs_tol=1e-9)


def non_integral(value) -> bool:
    return not float(value).is_integer()


def before(a: float, b: float) -> bool:
    return a < b                        # inequalities are fine
