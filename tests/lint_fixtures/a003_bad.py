"""Fixture: axis-dependent float reductions feeding selection keys (A003)."""

import heapq

import numpy as np


def pick(grid):
    totals = np.sum(grid, axis=0)           # fold order follows layout
    best = np.argmin(totals)                # selection over the reduction
    order = sorted(range(4), key=lambda i: totals[i])
    heap = []
    heapq.heappush(heap, (float(totals[0]), 0))
    return best, order, heap
