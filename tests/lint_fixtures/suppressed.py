"""Fixture: suppression comments silence known violations."""
# repro-lint: disable=D004

import random
import time


def jitter():
    return random.random()  # repro-lint: disable-line=D001


def stamp():
    return time.time()      # covered by the file-wide D004 disable
