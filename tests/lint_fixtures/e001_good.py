"""Fixture: every sanctioned trial-mutation pattern (E001 clean).

Fresh-object discard, journal rollback, try/finally restore, and a
call site passing a fresh receiver into a param-mutating helper.
"""


class Occupancy:
    def __init__(self):
        self.rows = {}
        self.journal = None

    def add(self, cell):
        self.rows[cell] = True

    def restore(self, cell):
        self.rows.pop(cell, None)

    def set_journal(self, journal):
        self.journal = journal


def probe(cell):
    if cell < 0:
        raise ValueError("bad cell")
    return cell * 2


def trial_fresh(cell):
    occupancy = Occupancy()             # discarded with the frame on raise
    occupancy.add(cell)
    return probe(cell)


def trial_journaled(occupancy, journal, cell):
    occupancy.set_journal(journal)      # delta log can roll back
    occupancy.add(cell)
    return probe(cell)


class Keeper:
    def __init__(self):
        self.occupancy = Occupancy()

    def trial_restored(self, cell):
        try:
            self.occupancy.add(cell)
            return probe(cell)
        finally:
            self.occupancy.restore(cell)


def helper_trial(occupancy, cell):
    occupancy.add(cell)                 # param receiver: judged at call sites
    return probe(cell)


def run_fresh(cell):
    occupancy = Occupancy()
    return helper_trial(occupancy, cell)
