"""Fixture: a purity contract that holds (C002-clean).

Same contract shape as the bad twin — ``Engine.evaluate(scratch)`` —
but every write stays on values constructed inside the call tree or on
the sanctioned scratch parameter.
"""


class Tally:
    """Helper mutating only what it constructed."""

    def __init__(self):
        self.counts = {}

    def tick(self, key):
        self.counts[key] = self.counts.get(key, 0) + 1


class Engine:
    def __init__(self):
        self.log = []

    def evaluate(self, candidate, scratch=None):
        local = []
        local.append(candidate * 2)
        tally = Tally()                 # fresh object, fresh internals
        tally.tick("evaluate")
        if scratch is not None:
            scratch["cost"] = local[-1]  # sanctioned scratch write
        return sum(local) + tally.counts["evaluate"]

    def record(self, cost):
        self.log.append(cost)            # not under contract
