"""Fixture: monotonic duration probes — D004 must stay silent."""

import time


def timed(fn):
    start = time.perf_counter()
    value = fn()
    elapsed = time.perf_counter() - start
    idle = time.monotonic()
    return value, elapsed, idle
