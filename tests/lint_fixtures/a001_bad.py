"""Fixture: unstable array sorts in an ordering-sensitive module (A001)."""

import numpy as np


def rank(values):
    order = np.argsort(values)              # no kind: unstable introsort
    np.sort(values)                         # same, expression position
    idx = np.searchsorted(values, 3.0)      # implicit tie-break side
    arr = np.zeros(4)
    arr.sort()                              # ndarray receiver, proven by flow
    return order, idx, arr
