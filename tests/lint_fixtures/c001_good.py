"""Fixture: pure evaluation on the pool, serial aggregation (C001-clean)."""

from concurrent.futures import ThreadPoolExecutor


class Buffer:
    """Helper that mutates only what it owns."""

    def __init__(self, items):
        self.items = items

    def push(self, value):
        self.items.append(value)


class Evaluator:
    def __init__(self):
        self.total = 0

    def evaluate(self, item):
        squares = []                # fresh, thread-local container
        squares.append(item * item)
        return sum(squares)

    def evaluate_buffered(self, item):
        buffer = Buffer([])         # fresh capture: the list is local too
        buffer.push(item * 2)
        return sum(buffer.items)

    def run(self, items):
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(self.evaluate, item) for item in items]
            futures += [
                pool.submit(self.evaluate_buffered, item) for item in items
            ]
            results = [future.result() for future in futures]
        for value in results:
            self.total += value     # aggregation happens serially
        return self.total
