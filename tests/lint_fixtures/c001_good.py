"""Fixture: pure evaluation on the pool, serial aggregation (C001-clean)."""

from concurrent.futures import ThreadPoolExecutor


class Evaluator:
    def __init__(self):
        self.total = 0

    def evaluate(self, item):
        squares = []                # fresh, thread-local container
        squares.append(item * item)
        return sum(squares)

    def run(self, items):
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(self.evaluate, item) for item in items]
            results = [future.result() for future in futures]
        for value in results:
            self.total += value     # aggregation happens serially
        return self.total
