"""Fixture: pinned iteration order — D002 must stay silent."""


def process(mapping, items):
    for key in sorted(mapping.keys()):
        print(key)
    for value in sorted({1, 2, 3}):
        print(value)
    ordered = sorted(set(items))
    for tag in ordered:
        print(tag)
    for element in [3, 1, 2]:
        print(element)
    return [key for key in sorted(mapping)]
