"""Fixture: canonical worker pipe payloads (P001 clean)."""

import json


def build_stats(design):
    names = sorted(design)
    return [(name, len(name)) for name in names]


def worker_loop(conn, design):
    results = []
    for name in sorted(design):
        results.append((name, len(name)))
    conn.send(("ready",))
    conn.send(("stats", build_stats(design)))       # pure builder
    conn.send(("results", results, len(results)))   # canonical accumulator
    blob = json.dumps({"cells": len(design)}, sort_keys=True)
    conn.send(("blob", blob))
