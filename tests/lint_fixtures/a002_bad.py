"""Fixture: float32/float64 mixing in a float-sensitive module (A002)."""

import numpy as np


def widths(sites):
    narrow = np.zeros(4, dtype=np.float32)
    wide = np.asarray(sites, dtype=np.float64)
    span = narrow + wide                    # mixed-precision add
    gap = wide - narrow                     # mixed-precision subtract
    return span, gap
