"""Fixture: non-canonical worker pipe payloads (P001)."""

import json

_CACHE = {}


def tally(results):
    for key, value in results:          # writes shared module state
        _CACHE[key] = _CACHE.get(key, 0) + value
    return _CACHE


def worker_loop(conn, design):
    results = []
    conn.send("ready")                              # not a tuple
    conn.send((1, results))                         # no string tag
    conn.send(("stats", {name for name in design})) # set comprehension
    conn.send(("totals", tally(results)))           # impure builder
    blob = json.dumps({"cells": len(design)})       # unsorted serialization
    return blob
