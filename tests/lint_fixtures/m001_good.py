"""Fixture: Store used through its own API (M001-clean)."""

from tests.lint_fixtures.m001_shared import Store


class Wrapper:
    def __init__(self):
        self._entries = []              # same private name, but ours

    def fill(self, store: Store, items):
        for index, item in enumerate(items):
            store.add(index, item)      # the sanctioned path
        self._entries.append(len(items))  # own state, not Store's
        return store.journal[-1]        # reads are unrestricted
