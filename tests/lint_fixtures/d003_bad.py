"""Fixture: float equality — each comparison trips D003."""


def same_slope(a: float, b: float) -> bool:
    return a == b                       # float-annotated parameters


def is_quarter(width, total):
    ratio = width / total               # true division -> float
    return ratio == 0.25


def non_integral(value):
    return float(value) != int(value)   # float() call on the left
