"""Tests for tools/repro_lint: per-rule detection, suppressions, CLI.

Each rule has a known-bad fixture (every violation detected) and a
known-good twin (zero violations), plus an end-to-end check that the
real source tree lints clean with the checked-in configuration.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint.cli import main as lint_main  # noqa: E402
from tools.repro_lint.config import LintConfig, load_config  # noqa: E402
from tools.repro_lint.engine import run_lint  # noqa: E402
from tools.repro_lint.suppress import parse_suppressions  # noqa: E402

FIXTURES = "tests/lint_fixtures"

#: Puts the fixture directory in scope of every path-scoped rule and
#: drops the default exclusion so fixtures can be linted at all.
FIXTURE_CONFIG = LintConfig(
    exclude=(),
    ordering_sensitive=(FIXTURES,),
    float_sensitive=(FIXTURES,),
    algorithm_modules=(FIXTURES,),
    scheduler_modules=(FIXTURES,),
)


def lint_fixture(name):
    return run_lint(REPO_ROOT, [f"{FIXTURES}/{name}"], FIXTURE_CONFIG)


def codes(violations):
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# Rule detection on fixtures
# ----------------------------------------------------------------------


def test_d001_bad_fixture_detected():
    violations = [v for v in lint_fixture("d001_bad.py") if v.rule == "D001"]
    # shuffle, randint, np.random.normal, Random(), default_rng(),
    # SystemRandom.
    assert len(violations) == 6
    lines = {v.line for v in violations}
    assert len(lines) == 6  # one per statement, none double-counted


def test_d001_good_fixture_clean():
    assert lint_fixture("d001_good.py") == []


def test_d002_bad_fixture_detected():
    violations = [v for v in lint_fixture("d002_bad.py") if v.rule == "D002"]
    # keys() loop, set-literal loop, set()-bound name loop, comprehension.
    assert len(violations) == 4


def test_d002_good_fixture_clean():
    assert lint_fixture("d002_good.py") == []


def test_d003_bad_fixture_detected():
    violations = [v for v in lint_fixture("d003_bad.py") if v.rule == "D003"]
    # float params ==, division result ==, float() != int().
    assert len(violations) == 3


def test_d003_good_fixture_clean():
    assert lint_fixture("d003_good.py") == []


def test_d004_bad_fixture_detected():
    violations = [v for v in lint_fixture("d004_bad.py") if v.rule == "D004"]
    # time.time, datetime.now, time.ctime.
    assert len(violations) == 3


def test_d004_good_fixture_clean():
    assert lint_fixture("d004_good.py") == []


def test_c001_bad_fixture_detected():
    violations = [v for v in lint_fixture("c001_bad.py") if v.rule == "C001"]
    # self.count += 1, self.log.append, plus the unresolvable
    # callbacks[0] submission.
    assert len(violations) == 3
    messages = " | ".join(v.message for v in violations)
    assert "self" in messages
    assert "cannot resolve" in messages


def test_c001_good_fixture_clean():
    assert lint_fixture("c001_good.py") == []


def test_c001_out_of_scope_without_config():
    # With the default config the fixture is not a scheduler module, so
    # the race detector must not fire at all.
    config = LintConfig(exclude=())
    violations = run_lint(REPO_ROOT, [f"{FIXTURES}/c001_bad.py"], config)
    assert [v for v in violations if v.rule == "C001"] == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_suppression_comments_silence_violations():
    assert lint_fixture("suppressed.py") == []


def test_suppression_parser():
    text = (
        "# repro-lint: disable=D001,D004\n"
        "x = 1  # repro-lint: disable-line=D003\n"
    )
    suppressions = parse_suppressions(text)
    assert suppressions.file_rules == frozenset({"D001", "D004"})
    assert suppressions.is_suppressed("D003", 2)
    assert not suppressions.is_suppressed("D003", 1)
    assert suppressions.is_suppressed("D001", 99)


# ----------------------------------------------------------------------
# The real tree lints clean
# ----------------------------------------------------------------------


def test_source_tree_lints_clean():
    config = load_config(REPO_ROOT)
    violations = run_lint(REPO_ROOT, ["src", "tests", "benchmarks"], config)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_fixture_directory_excluded_by_default():
    config = load_config(REPO_ROOT)
    violations = run_lint(REPO_ROOT, [FIXTURES], config)
    assert violations == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_codes(capsys):
    assert lint_main(["--root", str(REPO_ROOT), "src"]) == 0
    capsys.readouterr()
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("D001", "D002", "D003", "D004", "C001"):
        assert code in out


def test_cli_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.shuffle([1, 2])\n")
    assert lint_main(["--root", str(tmp_path), "bad.py"]) == 1
    out = capsys.readouterr().out
    assert "D001" in out


def test_syntax_error_reported_not_crashing(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    assert lint_main(["--root", str(tmp_path), "broken.py"]) == 1
    out = capsys.readouterr().out
    assert "E999" in out


# ----------------------------------------------------------------------
# Regression: the refactor the race rule forced
# ----------------------------------------------------------------------


def test_scheduler_submits_pure_evaluation():
    """The scheduler must submit evaluate_insert, never try_insert."""
    scheduler = (REPO_ROOT / "src/repro/core/scheduler.py").read_text()
    assert "pool.submit(legalizer.evaluate_insert" in scheduler
    assert "pool.submit(legalizer.try_insert" not in scheduler
