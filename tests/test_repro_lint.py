"""Tests for tools/repro_lint: per-rule detection, suppressions, CLI,
output formats, baselines, and the incremental cache.

Each rule has a known-bad fixture (every violation detected) and a
known-good twin (zero violations), plus an end-to-end check that the
real source tree lints clean with the checked-in configuration.
"""

import json
import sys
from dataclasses import replace
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint.baseline import (  # noqa: E402
    apply_baseline,
    load_baseline,
    write_baseline,
)
from tools.repro_lint.cli import main as lint_main  # noqa: E402
from tools.repro_lint.config import LintConfig, load_config  # noqa: E402
from tools.repro_lint.engine import lint, run_lint  # noqa: E402
from tools.repro_lint.formats import render_sarif  # noqa: E402
from tools.repro_lint.rules import all_rules  # noqa: E402
from tools.repro_lint.suppress import parse_suppressions  # noqa: E402
from tools.repro_lint.violations import Violation  # noqa: E402

FIXTURES = "tests/lint_fixtures"

#: Puts the fixture directory in scope of every path-scoped rule and
#: drops the default exclusion so fixtures can be linted at all.  The
#: contract/protection lists start empty; per-test configs add the
#: entries the fixture under test needs.
FIXTURE_CONFIG = LintConfig(
    exclude=(),
    ordering_sensitive=(FIXTURES,),
    float_sensitive=(FIXTURES,),
    algorithm_modules=(FIXTURES,),
    scheduler_modules=(FIXTURES,),
    trial_modules=(FIXTURES,),
    pipe_modules=(FIXTURES,),
    pure_contracts=(),
    mutation_protected=(),
    mutation_commits=(),
)


def lint_fixture(name, config=FIXTURE_CONFIG):
    return run_lint(REPO_ROOT, [f"{FIXTURES}/{name}"], config)


def codes(violations):
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# Rule detection on fixtures
# ----------------------------------------------------------------------


def test_d001_bad_fixture_detected():
    violations = [v for v in lint_fixture("d001_bad.py") if v.rule == "D001"]
    # shuffle, randint, np.random.normal, Random(), default_rng(),
    # SystemRandom.
    assert len(violations) == 6
    lines = {v.line for v in violations}
    assert len(lines) == 6  # one per statement, none double-counted


def test_d001_good_fixture_clean():
    assert lint_fixture("d001_good.py") == []


def test_d002_bad_fixture_detected():
    violations = [v for v in lint_fixture("d002_bad.py") if v.rule == "D002"]
    # keys() loop, set-literal loop, set()-bound name loop, comprehension.
    assert len(violations) == 4


def test_d002_good_fixture_clean():
    assert lint_fixture("d002_good.py") == []


def test_d003_bad_fixture_detected():
    violations = [v for v in lint_fixture("d003_bad.py") if v.rule == "D003"]
    # float params ==, division result ==, float() != int().
    assert len(violations) == 3


def test_d003_good_fixture_clean():
    assert lint_fixture("d003_good.py") == []


def test_d004_bad_fixture_detected():
    violations = [v for v in lint_fixture("d004_bad.py") if v.rule == "D004"]
    # time.time, datetime.now, time.ctime.
    assert len(violations) == 3


def test_d004_good_fixture_clean():
    assert lint_fixture("d004_good.py") == []


def test_d005_bad_fixture_detected():
    violations = [v for v in lint_fixture("d005_bad.py") if v.rule == "D005"]
    # key=id, hash() in a lambda key, env-tainted tuple key, id-tainted
    # heappush item.
    assert len(violations) == 4
    messages = " | ".join(v.message for v in violations)
    assert "id" in messages
    assert "hash()" in messages
    assert "os.environ" in messages
    assert "heap" in messages


def test_d005_good_fixture_clean():
    # Includes the rebind case: an env-tainted name reassigned to a
    # constant before the sort must not be reported.
    assert lint_fixture("d005_good.py") == []


def test_c001_bad_fixture_detected():
    violations = [v for v in lint_fixture("c001_bad.py") if v.rule == "C001"]
    # self.count += 1, self.log.append, the unresolvable callbacks[0]
    # submission, and the Sink-capture write (shared list smuggled into
    # a locally constructed object).
    assert len(violations) == 4
    messages = " | ".join(v.message for v in violations)
    assert "self" in messages
    assert "cannot resolve" in messages


def test_c001_fresh_local_capture_detected():
    """The capture hole is closed: Collector.collect builds Sink(self.events)
    locally and pushes through it — that write must be attributed."""
    violations = [v for v in lint_fixture("c001_bad.py") if v.rule == "C001"]
    collect = [v for v in violations if "collect" in v.message]
    assert len(collect) == 1


def test_c001_good_fixture_clean():
    # c001_good includes a fresh Buffer([]) captured by a local helper —
    # a benign twin of the capture case that must stay clean.
    assert lint_fixture("c001_good.py") == []


def test_c001_out_of_scope_without_config():
    # With the default config the fixture is not a scheduler module, so
    # the race detector must not fire at all.
    config = LintConfig(exclude=())
    violations = run_lint(REPO_ROOT, [f"{FIXTURES}/c001_bad.py"], config)
    assert [v for v in violations if v.rule == "C001"] == []


def test_c002_bad_fixture_detected():
    config = replace(
        FIXTURE_CONFIG,
        pure_contracts=(
            "tests.lint_fixtures.c002_bad.Engine.evaluate(scratch)",
        ),
    )
    violations = [
        v for v in lint_fixture("c002_bad.py", config) if v.rule == "C002"
    ]
    # Direct self.history.append plus the transitive Meter(self.stats)
    # capture; the sanctioned scratch["cost"] write is not reported.
    assert len(violations) == 2
    messages = " | ".join(v.message for v in violations)
    assert "evaluate" in messages


def test_c002_good_fixture_clean():
    config = replace(
        FIXTURE_CONFIG,
        pure_contracts=(
            "tests.lint_fixtures.c002_good.Engine.evaluate(scratch)",
        ),
    )
    assert lint_fixture("c002_good.py", config) == []


def test_c002_unresolvable_contract_reported_in_home_module():
    # A contract that points into a scanned module but at a function
    # that does not exist is a stale config entry — fail loudly.
    config = replace(
        FIXTURE_CONFIG,
        pure_contracts=("tests.lint_fixtures.c002_bad.Engine.missing",),
    )
    violations = lint_fixture("c002_bad.py", config)
    assert codes(violations) == ["C002"]
    assert "does not resolve" in violations[0].message


def test_c002_unresolvable_contract_quiet_outside_home_module():
    # The same stale entry must NOT fire when the contract's home
    # module is not part of the scan (fixture runs, partial scans).
    config = replace(
        FIXTURE_CONFIG,
        pure_contracts=("tests.lint_fixtures.c002_bad.Engine.missing",),
    )
    assert lint_fixture("d001_good.py", config) == []


M001_CONFIG = replace(
    FIXTURE_CONFIG,
    mutation_protected=("tests.lint_fixtures.m001_shared.Store",),
)


def test_m001_bad_fixture_detected():
    violations = run_lint(
        REPO_ROOT,
        [f"{FIXTURES}/m001_shared.py", f"{FIXTURES}/m001_bad.py"],
        M001_CONFIG,
    )
    m001 = [v for v in violations if v.rule == "M001"]
    # Typed subscript write, mutating call on internals, and the
    # private-attr fallback on an untyped receiver.
    assert len(m001) == 3
    assert all(v.path.endswith("m001_bad.py") for v in m001)
    assert violations == m001  # nothing else fires


def test_m001_good_fixture_clean():
    # Own `_entries` (base is self), store.add(...) through the API,
    # and reads of store.journal are all legal.
    violations = run_lint(
        REPO_ROOT,
        [f"{FIXTURES}/m001_shared.py", f"{FIXTURES}/m001_good.py"],
        M001_CONFIG,
    )
    assert violations == []


def test_m001_home_module_is_exempt():
    # The Store's own methods write its internals freely.
    assert lint_fixture("m001_shared.py", M001_CONFIG) == []


def test_a001_bad_fixture_detected():
    violations = [v for v in lint_fixture("a001_bad.py") if v.rule == "A001"]
    # np.argsort without kind, np.sort without kind, searchsorted
    # without side, ndarray .sort() without kind.
    assert len(violations) == 4
    assert {v.line for v in violations} == {7, 8, 9, 11}


def test_a001_good_fixture_clean():
    assert lint_fixture("a001_good.py") == []


def test_a002_bad_fixture_detected():
    violations = [v for v in lint_fixture("a002_bad.py") if v.rule == "A002"]
    # float32 + float64 add and subtract on flow-tracked arrays.
    assert len(violations) == 2
    assert {v.line for v in violations} == {9, 10}


def test_a002_good_fixture_clean():
    assert lint_fixture("a002_good.py") == []


def test_a003_bad_fixture_detected():
    violations = [v for v in lint_fixture("a003_bad.py") if v.rule == "A003"]
    # argmin over an axis reduction, sorted() keyed on it, and the
    # reduction value pushed into a heap item.
    assert len(violations) == 3
    assert {v.line for v in violations} == {10, 11, 13}


def test_a003_good_fixture_clean():
    # Integer/bool reductions are exact regardless of axis order and
    # must not taint the selection.
    assert lint_fixture("a003_good.py") == []


E001_CONFIG = replace(
    FIXTURE_CONFIG,
    mutation_protected=("tests.lint_fixtures.e001_bad.Occupancy",),
)


def test_e001_bad_fixture_detected():
    violations = [
        v for v in lint_fixture("e001_bad.py", E001_CONFIG)
        if v.rule == "E001"
    ]
    # Two direct trial-path mutations on shared occupancy plus the
    # call-site violation where run() passes its shared instance into
    # the mutating helper.
    assert len(violations) == 3
    assert {v.line for v in violations} == {32, 34, 48}


def test_e001_commit_atomicity_detected():
    config = replace(
        E001_CONFIG,
        mutation_commits=("tests.lint_fixtures.e001_bad.commit_moves",),
    )
    violations = [
        v for v in lint_fixture("e001_bad.py", config) if v.rule == "E001"
    ]
    # The declared commit function raises after its first mutation: one
    # extra atomicity finding on top of the three trial-path ones.
    assert len(violations) == 4
    atomicity = [v for v in violations if "exit exceptionally" in v.message]
    assert len(atomicity) == 1 and atomicity[0].line == 53


def test_e001_good_fixture_clean():
    config = replace(
        FIXTURE_CONFIG,
        mutation_protected=("tests.lint_fixtures.e001_good.Occupancy",),
    )
    # Fresh receivers, journaled mutation, try/finally restore, and a
    # fresh instance passed into the shared helper all stay silent.
    assert lint_fixture("e001_good.py", config) == []


def test_p001_bad_fixture_detected():
    violations = [v for v in lint_fixture("p001_bad.py") if v.rule == "P001"]
    # Non-tuple payload, missing string tag, set-comprehension element,
    # impure builder, and json.dumps without sort_keys.
    assert len(violations) == 5
    assert {v.line for v in violations} == {16, 17, 18, 19, 20}


def test_p001_good_fixture_clean():
    assert lint_fixture("p001_good.py") == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def test_suppression_comments_silence_violations():
    assert lint_fixture("suppressed.py") == []


def test_suppression_parser():
    text = (
        "# repro-lint: disable=D001,D004\n"
        "x = 1  # repro-lint: disable-line=D003\n"
    )
    suppressions = parse_suppressions(text)
    assert suppressions.file_rules == frozenset({"D001", "D004"})
    assert suppressions.is_suppressed("D003", 2)
    assert not suppressions.is_suppressed("D003", 1)
    assert suppressions.is_suppressed("D001", 99)


def test_tree_carries_zero_suppressions():
    """The acceptance bar is a clean tree, not a silenced one: outside
    the lint fixtures, this file, and the suppression parser itself
    (all of which quote the marker), no source file may carry one."""
    marker = "repro-lint: " + "disable"  # split so we don't match ourselves
    exempt = {"tests/test_repro_lint.py", "tools/repro_lint/suppress.py"}
    offenders = []
    for target in ("src", "tests", "benchmarks", "tools"):
        for path in sorted((REPO_ROOT / target).rglob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            if rel.startswith(FIXTURES) or rel in exempt:
                continue
            if marker in path.read_text(encoding="utf-8"):
                offenders.append(rel)
    assert offenders == []


# ----------------------------------------------------------------------
# The real tree lints clean
# ----------------------------------------------------------------------


def test_source_tree_lints_clean():
    config = load_config(REPO_ROOT)
    violations = run_lint(
        REPO_ROOT, ["src", "tests", "benchmarks", "tools"], config
    )
    assert violations == [], "\n".join(v.render() for v in violations)


def test_fixture_directory_excluded_by_default():
    config = load_config(REPO_ROOT)
    violations = run_lint(REPO_ROOT, [FIXTURES], config)
    assert violations == []


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------


def test_sarif_shape():
    violations = [
        Violation("src/x.py", 3, 4, "D001", "unseeded randomness"),
        Violation("src/y.py", 1, 0, "E999", "syntax error: bad"),
    ]
    doc = json.loads(render_sarif(violations, all_rules()))
    assert doc["version"] == "2.1.0"
    assert "sarif" in doc["$schema"]
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert "D001" in rule_ids and "E999" in rule_ids
    results = run["results"]
    assert len(results) == 2
    first = results[0]
    assert first["ruleId"] == "D001"
    assert rule_ids[first["ruleIndex"]] == "D001"
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/x.py"
    assert location["region"]["startLine"] == 3
    assert location["region"]["startColumn"] == 5  # 0-based col 4 -> 1-based


def test_sarif_empty_run_is_valid():
    doc = json.loads(render_sarif([], all_rules()))
    assert doc["runs"][0]["results"] == []


def test_cli_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.shuffle([1, 2])\n")
    out_file = tmp_path / "findings.json"
    code = lint_main(
        ["--root", str(tmp_path), "bad.py",
         "--format", "json", "--output", str(out_file)]
    )
    capsys.readouterr()
    assert code == 1
    doc = json.loads(out_file.read_text())
    assert doc["tool"] == "repro-lint"
    assert [v["rule"] for v in doc["violations"]] == ["D001"]
    assert doc["stats"]["per_rule"] == {"D001": 1}
    assert doc["stats"]["files_total"] == 1


def test_cli_sarif_output_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.shuffle([1, 2])\n")
    out_file = tmp_path / "lint.sarif"
    code = lint_main(
        ["--root", str(tmp_path), "bad.py",
         "--format", "sarif", "--output", str(out_file)]
    )
    capsys.readouterr()
    assert code == 1
    doc = json.loads(out_file.read_text())
    assert doc["runs"][0]["results"][0]["ruleId"] == "D001"


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    old = Violation("src/x.py", 3, 4, "D001", "unseeded randomness")
    path = tmp_path / "baseline.json"
    write_baseline(path, [old])
    known = load_baseline(path)

    # The recorded finding is absorbed even when it moved lines.
    moved = Violation("src/x.py", 30, 0, "D001", "unseeded randomness")
    new, fixed = apply_baseline([moved], known)
    assert new == [] and fixed == 0

    # A genuinely new finding surfaces; a fixed one is counted.
    fresh = Violation("src/y.py", 1, 0, "D004", "wall clock")
    new, fixed = apply_baseline([fresh], known)
    assert new == [fresh] and fixed == 1

    # A second occurrence of the same message is new, not absorbed.
    new, fixed = apply_baseline([moved, moved], known)
    assert len(new) == 1 and fixed == 0


def test_baseline_malformed_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{\"version\": 99}")
    with pytest.raises(ValueError):
        load_baseline(path)


def test_cli_baseline_flow(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.shuffle([1, 2])\n")
    baseline = tmp_path / "baseline.json"

    # Capture: exits 0 even though the tree has findings.
    assert lint_main(
        ["--root", str(tmp_path), "bad.py",
         "--write-baseline", str(baseline)]
    ) == 0
    capsys.readouterr()

    # Compare: the recorded finding no longer fails the run.
    assert lint_main(
        ["--root", str(tmp_path), "bad.py", "--baseline", str(baseline)]
    ) == 0
    capsys.readouterr()

    # A new finding fails the run and is the only one printed.
    bad.write_text(
        "import random\nrandom.shuffle([1, 2])\nrandom.randint(0, 9)\n"
    )
    assert lint_main(
        ["--root", str(tmp_path), "bad.py", "--baseline", str(baseline)]
    ) == 1
    out = capsys.readouterr().out
    assert "randint" in out
    assert "shuffle" not in out


def test_cli_bad_baseline_exits_2(tmp_path, capsys):
    good = tmp_path / "ok.py"
    good.write_text("x = 1\n")
    broken = tmp_path / "baseline.json"
    broken.write_text("not json")
    assert lint_main(
        ["--root", str(tmp_path), "ok.py", "--baseline", str(broken)]
    ) == 2
    capsys.readouterr()


# ----------------------------------------------------------------------
# Incremental cache
# ----------------------------------------------------------------------


def _write_cross_module_tree(root, helper_body):
    (root / "liba.py").write_text(
        "from libb import helper\n"
        "\n"
        "\n"
        "def entry(items):\n"
        "    return [helper(item) for item in items]\n"
    )
    (root / "libb.py").write_text(helper_body)
    (root / "libc.py").write_text("UNRELATED = 1\n")


_CACHE_CONFIG = LintConfig(
    exclude=(),
    ordering_sensitive=(),
    float_sensitive=(),
    algorithm_modules=(),
    scheduler_modules=(),
    pure_contracts=("liba.entry",),
    mutation_protected=(),
)

_PURE_HELPER = "def helper(item):\n    return item * 2\n"
_IMPURE_HELPER = (
    "SEEN = []\n"
    "\n"
    "\n"
    "def helper(item):\n"
    "    SEEN.append(item)\n"
    "    return item * 2\n"
)


def test_cache_cold_then_warm_identical(tmp_path):
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    cache = tmp_path / "cache.json"

    cold = lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)
    assert cold.stats.cache_mode == "cold"
    assert cold.stats.files_replayed == 0
    assert cold.violations == []

    warm = lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)
    assert warm.stats.cache_mode == "warm"
    assert warm.stats.files_replayed == warm.stats.files_total == 3
    assert warm.violations == cold.violations


def test_cache_content_change_invalidates(tmp_path):
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    cache = tmp_path / "cache.json"
    lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)

    # Introduce a violation directly in the edited file.
    (tmp_path / "libc.py").write_text(
        "import random\n\nVALUE = random.randint(0, 9)\n"
    )
    config = replace(_CACHE_CONFIG, algorithm_modules=("libc.py",))
    result = lint(tmp_path, ["."], config, cache_path=cache)
    # The config change invalidates everything (digest mismatch) — the
    # point here is that stale findings never replay.
    assert [v.rule for v in result.violations] == ["D001"]

    # Now fix it again with the SAME config: only libc re-runs.
    (tmp_path / "libc.py").write_text("UNRELATED = 2\n")
    result = lint(tmp_path, ["."], config, cache_path=cache)
    assert result.violations == []
    assert result.stats.cache_mode == "partial"
    assert result.stats.files_replayed == 2  # liba + libb replayed


def test_cache_cross_module_dependency_invalidates(tmp_path):
    """Editing ONLY the callee must re-check the caller's contract."""
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    cache = tmp_path / "cache.json"
    cold = lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)
    assert cold.violations == []

    (tmp_path / "libb.py").write_text(_IMPURE_HELPER)
    result = lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)
    c002 = [v for v in result.violations if v.rule == "C002"]
    assert len(c002) == 1
    # The finding is anchored in the UNCHANGED caller file: its cached
    # entry was invalidated through the call-graph dependency digest.
    assert c002[0].path == "liba.py"
    # The file with no edge to the edited module replayed from cache.
    assert result.stats.cache_mode == "partial"
    assert result.stats.files_replayed >= 1


def test_cache_corrupt_file_is_ignored(tmp_path):
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    cache = tmp_path / "cache.json"
    cache.write_text("{ this is not json")
    result = lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)
    assert result.stats.cache_mode == "cold"
    assert result.violations == []
    # And the bad file was overwritten with a usable cache.
    warm = lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)
    assert warm.stats.cache_mode == "warm"


def test_cache_family_granular_invalidation(tmp_path):
    """Changing only one family's config fields re-runs just that
    family; everything else replays from the cached entries."""
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    cache = tmp_path / "cache.json"
    lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)

    # trial-modules belongs to the E family alone.
    config = replace(_CACHE_CONFIG, trial_modules=("libb.py",))
    result = lint(tmp_path, ["."], config, cache_path=cache)
    assert result.stats.cache_mode == "partial"
    assert result.stats.families_rerun == ["E"]
    assert result.stats.files_replayed == 3
    # Identical findings to a cacheless run under the new config.
    assert result.violations == run_lint(tmp_path, ["."], config)


def test_cache_family_replay_carries_other_families_findings(tmp_path):
    """A cached D-finding must survive an E-family-only config change —
    replayed, not recomputed, and never dropped."""
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    (tmp_path / "libc.py").write_text(
        "import random\n\nVALUE = random.randint(0, 9)\n"
    )
    base = replace(_CACHE_CONFIG, algorithm_modules=("libc.py",))
    cache = tmp_path / "cache.json"
    cold = lint(tmp_path, ["."], base, cache_path=cache)
    assert [v.rule for v in cold.violations] == ["D001"]

    config = replace(base, trial_modules=("libb.py",))
    result = lint(tmp_path, ["."], config, cache_path=cache)
    assert result.stats.families_rerun == ["E"]
    assert result.violations == cold.violations


def test_cache_base_field_change_disables_family_replay(tmp_path):
    """``exclude`` is shared by every rule: changing it must degrade to
    a full re-run, not a family-granular one."""
    _write_cross_module_tree(tmp_path, _PURE_HELPER)
    cache = tmp_path / "cache.json"
    lint(tmp_path, ["."], _CACHE_CONFIG, cache_path=cache)

    config = replace(_CACHE_CONFIG, exclude=("nothing_matches/",))
    result = lint(tmp_path, ["."], config, cache_path=cache)
    assert result.stats.families_rerun == []
    assert result.stats.files_replayed == 0


def test_family_rerun_beats_half_of_cold_on_real_tree(tmp_path):
    """Acceptance criterion: a config edit touching one family's fields
    re-lints the full tree in under half the cold wall time, with
    findings identical to a cold run under the changed config."""
    config = load_config(REPO_ROOT)
    cache = tmp_path / "cache.json"
    targets = ["src", "tests", "benchmarks", "tools"]
    cold = lint(REPO_ROOT, targets, config, cache_path=cache)

    changed = replace(
        config, trial_modules=config.trial_modules + ("src/repro/gp/",)
    )
    partial = lint(REPO_ROOT, targets, changed, cache_path=cache)
    assert partial.stats.cache_mode == "partial"
    assert partial.stats.families_rerun == ["E"]
    assert partial.stats.wall_seconds < 0.5 * cold.stats.wall_seconds
    assert partial.violations == cold.violations == []


def test_warm_cache_halves_full_tree_wall_time(tmp_path):
    """Acceptance criterion: warm rerun < half the cold wall time, with
    identical findings."""
    config = load_config(REPO_ROOT)
    cache = tmp_path / "cache.json"
    targets = ["src", "tests", "benchmarks", "tools"]
    cold = lint(REPO_ROOT, targets, config, cache_path=cache)
    warm = lint(REPO_ROOT, targets, config, cache_path=cache)
    assert warm.violations == cold.violations
    assert warm.stats.cache_mode == "warm"
    assert warm.stats.wall_seconds < 0.5 * cold.stats.wall_seconds


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_codes(capsys):
    assert lint_main(["--root", str(REPO_ROOT), "src"]) == 0
    capsys.readouterr()
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "D001", "D002", "D003", "D004", "D005", "C001", "C002", "M001",
        "A001", "A002", "A003", "E001", "P001",
    ):
        assert code in out
    assert len(all_rules()) == 13


def test_cli_internal_error_exits_2(tmp_path, capsys, monkeypatch):
    """An analyzer crash is exit 2, never 0 (clean) or 1 (findings)."""
    import tools.repro_lint.cli as cli_module

    def boom(*args, **kwargs):
        raise RuntimeError("dataflow engine exploded")

    monkeypatch.setattr(cli_module, "lint", boom)
    good = tmp_path / "ok.py"
    good.write_text("x = 1\n")
    assert lint_main(["--root", str(tmp_path), "ok.py"]) == 2
    err = capsys.readouterr().err
    assert "internal analyzer error" in err
    assert "dataflow engine exploded" in err


def test_cli_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nrandom.shuffle([1, 2])\n")
    assert lint_main(["--root", str(tmp_path), "bad.py"]) == 1
    out = capsys.readouterr().out
    assert "D001" in out


def test_cli_missing_target_exits_2(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path), "no_such_dir"]) == 2
    capsys.readouterr()


def test_cli_stats_flag(tmp_path, capsys):
    good = tmp_path / "ok.py"
    good.write_text("x = 1\n")
    assert lint_main(["--root", str(tmp_path), "ok.py", "--stats"]) == 0
    err = capsys.readouterr().err
    assert "1 file(s)" in err
    assert "findings:" in err


def test_cli_cache_flag_round_trip(tmp_path, capsys):
    good = tmp_path / "ok.py"
    good.write_text("x = 1\n")
    for _ in range(2):
        assert lint_main(
            ["--root", str(tmp_path), "ok.py", "--cache", "--stats"]
        ) == 0
    err = capsys.readouterr().err
    assert (tmp_path / ".repro-lint-cache.json").exists()
    assert "(warm)" in err


def test_syntax_error_reported_not_crashing(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    assert lint_main(["--root", str(tmp_path), "broken.py"]) == 1
    out = capsys.readouterr().out
    assert "E999" in out


# ----------------------------------------------------------------------
# Regression: the refactors the rules forced
# ----------------------------------------------------------------------


def test_scheduler_submits_pure_evaluation():
    """The scheduler must submit evaluate_insert, never try_insert."""
    scheduler = (REPO_ROOT / "src/repro/core/scheduler.py").read_text()
    assert "pool.submit(legalizer.evaluate_insert" in scheduler
    assert "pool.submit(legalizer.try_insert" not in scheduler


def test_guard_caches_are_thread_local():
    """C001/C002 forced the routability guard's memo caches onto
    threading.local; keep them there."""
    refine = (REPO_ROOT / "src/repro/core/refine.py").read_text()
    assert "threading.local" in refine


def test_design_segments_built_eagerly():
    """The segments cache is built in __init__ / on mutation, never
    lazily from a reader (readers run on scheduler worker threads)."""
    design = (REPO_ROOT / "src/repro/model/design.py").read_text()
    assert "_rebuild_segments" in design
