"""Tests for the routability guard (paper §3.4)."""

import pytest

from repro.core.params import LegalizerParams
from repro.core.refine import RoutabilityGuard
from repro.model.design import Design
from repro.model.geometry import Interval, Rect
from repro.model.placement import Placement
from repro.model.rails import HORIZONTAL, IOPin, Rail, VERTICAL
from repro.model.technology import CellType, PinShape, Technology


@pytest.fixture
def guarded():
    tech = Technology(
        cell_types=[
            CellType("P", 3, 1, pins=(
                PinShape("a", 1, Rect(0.05, 0.2, 0.25, 0.6)),
                PinShape("z", 2, Rect(0.3, 1.0, 0.45, 1.5)),
            )),
            CellType("NOPIN", 2, 1),
        ]
    )
    design = Design(tech, num_rows=8, num_sites=40, name="guarded")
    # Horizontal M2 stripe crossing row 2's M1 pin band.
    design.rails.add_rail(
        Rail(2, HORIZONTAL, offset=4.2, pitch=1000.0, width=0.2,
             span=Interval(0, 16), extent=Interval(0, 8))
    )
    # Vertical M3 stripes every 2.0 length units (10 sites).
    design.rails.add_rail(
        Rail(3, VERTICAL, offset=1.3, pitch=2.0, width=0.1,
             span=Interval(0, 8), extent=Interval(0, 16))
    )
    return design, RoutabilityGuard(design, LegalizerParams())


class TestRowOk:
    def test_blocked_row_detected(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        assert not guard.row_ok(p, 2)  # M1 pin under the M2 stripe
        assert guard.row_ok(p, 0)

    def test_pinless_type_always_ok(self, guarded):
        design, guard = guarded
        nopin = design.technology.type_named("NOPIN")
        assert guard.row_ok(nopin, 2)

    def test_cache_consistency(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        assert guard.row_ok(p, 2) == guard.row_ok(p, 2)


class TestXBlocked:
    def test_vertical_rail_blocks_some_x(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        blocked = [x for x in range(0, 30) if guard.x_blocked(p, 0, x)]
        clear = [x for x in range(0, 30) if not guard.x_blocked(p, 0, x)]
        assert blocked and clear  # stripes block periodically, not always

    def test_adjust_x_moves_off_rail(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        blocked = next(x for x in range(5, 25) if guard.x_blocked(p, 0, x))
        new_x, extra = guard.adjust_x(p, 0, blocked, 0, 39, lambda x: abs(x - blocked))
        assert not guard.x_blocked(p, 0, new_x)
        assert new_x != blocked

    def test_adjust_x_keeps_clean_optimum(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        clear = next(x for x in range(5, 25) if not guard.x_blocked(p, 0, x))
        new_x, extra = guard.adjust_x(p, 0, clear, 0, 39, lambda x: abs(x - clear))
        assert new_x == clear
        assert extra == pytest.approx(0.0)

    def test_adjust_x_penalty_when_everywhere_blocked(self):
        tech = Technology(cell_types=[
            CellType("P", 2, 1, pins=(PinShape("a", 2, Rect(0.0, 0.5, 0.4, 0.9)),))
        ])
        design = Design(tech, num_rows=4, num_sites=20, name="wall")
        design.rails.add_rail(  # M3 vertical stripes denser than the pin
            Rail(3, VERTICAL, offset=0.0, pitch=0.3, width=0.25,
                 span=Interval(0, 4), extent=Interval(0, 8))
        )
        guard = RoutabilityGuard(design, LegalizerParams())
        p = tech.type_named("P")
        x, extra = guard.adjust_x(p, 0, 5, 0, 18, lambda x: 0.0)
        assert x == 5  # kept
        assert extra >= guard.params.blocked_penalty


class TestIOPenalty:
    def test_penalty_counted(self, guarded):
        design, guard = guarded
        design.rails.add_io_pin(IOPin("io", 1, Rect(1.0, 0.1, 1.3, 0.9)))
        p = design.technology.type_named("P")
        # At x=5 the M1 pin spans x [1.05, 1.25): overlaps the IO pin.
        assert guard.io_penalty_at(p, 0, 5) > 0
        assert guard.io_penalty_at(p, 0, 20) == 0.0


class TestFeasibleRange:
    def test_range_contains_current_and_is_clean(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        x = next(x for x in range(5, 25) if not guard.x_blocked(p, 0, x))
        lo, hi = guard.feasible_range(p, 0, x, 0, 37)
        assert lo <= x <= hi
        for candidate in range(lo, hi + 1):
            assert not guard.x_blocked(p, 0, candidate)

    def test_blocked_current_pins_cell(self, guarded):
        design, guard = guarded
        p = design.technology.type_named("P")
        x = next(x for x in range(5, 25) if guard.x_blocked(p, 0, x))
        assert guard.feasible_range(p, 0, x, 0, 37) == (x, x)

    def test_pinless_gets_full_segment(self, guarded):
        design, guard = guarded
        nopin = design.technology.type_named("NOPIN")
        assert guard.feasible_range(nopin, 0, 10, 2, 30) == (2, 30)

    def test_growth_cap(self, guarded):
        design, guard = guarded
        guard.params.feasible_range_limit = 2
        nopin_tech = Technology(cell_types=[CellType("Q", 2, 1, pins=(
            PinShape("a", 1, Rect(0.0, 0.2, 0.1, 0.4)),))])
        q = nopin_tech.cell_types[0]
        lo, hi = guard.feasible_range(q, 1, 10, 0, 37)
        assert lo >= 8 and hi <= 12
