"""Deterministic trace sampling (ISSUE 9 acceptance gates).

``SpanTracer(sample_every=k)`` keeps the per-cell ``window``/``evaluate``
spans for every k-th cell of the fixed MGL cell order and drops the
rest.  The properties under test:

1. **Sampling never perturbs the algorithm** — placements are
   bit-identical between sampled, unsampled, and untraced runs.
2. **Sampled structure is worker-count-invariant at fixed k** (and
   fixed scheduler capacity — capacity changes batch structure, which
   is a legitimate structural difference, not drift).
3. **The keep/drop decision is rank-based**: the sampled cells are
   exactly ``mgl_cell_order(...)[::k]``, never a function of workers,
   shards, or time.
4. **k=1 is the identity policy** — same tree as a default tracer.

Plus shape checks on the Chrome-trace/JSONL exports of a sampled run,
so the artifacts stay loadable by Perfetto / ``load_trace_jsonl``.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.mgl import MGLegalizer, mgl_cell_order
from repro.core.params import LegalizerParams
from repro.obs.tracer import SpanTracer
from tests.test_trace_determinism import build_design, traced_mgl


def sampled_mgl(design, workers, sample_every, capacity=8):
    params = LegalizerParams(
        routability=False,
        scheduler_capacity=capacity,
        scheduler_workers=workers,
    )
    tracer = SpanTracer(sample_every=sample_every)
    placement = MGLegalizer(design, params, tracer=tracer).run()
    return tracer, (list(placement.x), list(placement.y))


def cells_with_window_spans(tracer):
    """Cell ids that got a per-cell ``window`` span recorded."""
    return {
        span.attrs["cell"]
        for span in tracer._walk_all()
        if span.name == "window" and "cell" in span.attrs
    }


class TestSamplingDoesNotPerturb:
    def test_sampled_placement_matches_untraced(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=8)
        untraced = MGLegalizer(small_design, params).run()
        _, sampled_pos = sampled_mgl(small_design, workers=0, sample_every=4)
        assert sampled_pos == (list(untraced.x), list(untraced.y))

    def test_all_strides_agree_on_the_placement(self, small_design):
        positions = {
            k: sampled_mgl(small_design, workers=0, sample_every=k)[1]
            for k in (1, 2, 7, 1000)
        }
        assert len({json.dumps(p) for p in positions.values()}) == 1


class TestSamplingPolicy:
    def test_sampled_cells_are_every_kth_of_the_fixed_order(
        self, small_design
    ):
        params = LegalizerParams(routability=False, scheduler_capacity=8)
        order = mgl_cell_order(small_design, params)
        tracer, _ = sampled_mgl(small_design, workers=0, sample_every=3)
        assert cells_with_window_spans(tracer) == set(order[::3])

    def test_structural_spans_survive_any_stride(self, small_design):
        # A stride bigger than the design keeps exactly one sampled cell
        # (rank 0) but never drops mgl/batch structure.
        tracer, _ = sampled_mgl(
            small_design, workers=0, sample_every=10_000
        )
        names = {span.name for span in tracer._walk_all()}
        assert "batch" in names  # scheduler structure is never sampled away
        params = LegalizerParams(routability=False, scheduler_capacity=8)
        order = mgl_cell_order(small_design, params)
        assert cells_with_window_spans(tracer) == {order[0]}

    def test_k1_is_identical_to_the_default_tracer(self, small_design):
        full_tracer, _ = traced_mgl(small_design, workers=0)
        k1_tracer, _ = sampled_mgl(small_design, workers=0, sample_every=1)
        assert k1_tracer.structure_hash() == full_tracer.structure_hash()
        assert k1_tracer.span_count() == full_tracer.span_count()

    def test_sampling_strictly_shrinks_the_tree(self, small_design):
        full_tracer, _ = sampled_mgl(small_design, workers=0, sample_every=1)
        thin_tracer, _ = sampled_mgl(small_design, workers=0, sample_every=8)
        assert thin_tracer.span_count() < full_tracer.span_count()
        assert thin_tracer.structure_hash() != full_tracer.structure_hash()

    def test_sampled_predicate_matches_recorded_spans(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=8)
        order = mgl_cell_order(small_design, params)
        tracer = SpanTracer(sample_every=2)
        tracer.set_cell_population(order)
        kept = {cell for cell in order if tracer.sampled(cell)}
        assert kept == set(order[::2])

    def test_invalid_stride_is_rejected(self):
        try:
            SpanTracer(sample_every=0)
        except ValueError as err:
            assert "sample_every" in str(err)
        else:  # pragma: no cover - the guard exists
            raise AssertionError("sample_every=0 accepted")


class TestWorkerInvarianceAtFixedStride:
    def test_structure_hash_identical_serial_vs_pool(self, small_design):
        serial, serial_pos = sampled_mgl(
            small_design, workers=0, sample_every=4
        )
        pooled, pooled_pos = sampled_mgl(
            small_design, workers=2, sample_every=4
        )
        assert serial.structure_hash() == pooled.structure_hash()
        assert serial.span_count() == pooled.span_count()
        assert serial_pos == pooled_pos

    @settings(max_examples=2, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 10_000),
        density=st.floats(0.3, 0.5),
        stride=st.sampled_from([2, 5, 16]),
    )
    def test_property_sampled_structure_is_input_deterministic(
        self, seed, density, stride
    ):
        design = build_design(seed, density)
        serial, serial_pos = sampled_mgl(
            design, workers=0, sample_every=stride
        )
        pooled, pooled_pos = sampled_mgl(
            design, workers=2, sample_every=stride
        )
        assert serial.structure_hash() == pooled.structure_hash()
        assert serial_pos == pooled_pos
        # And replaying serially reproduces the same sampled tree.
        replay, _ = sampled_mgl(design, workers=0, sample_every=stride)
        assert replay.structure_hash() == serial.structure_hash()


class TestExportShape:
    def test_chrome_trace_events_are_complete_and_tracked(self, small_design):
        tracer, _ = sampled_mgl(small_design, workers=2, sample_every=4)
        payload = tracer.to_chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == tracer.span_count()
        for event in events:
            # Complete events: Perfetto derives nesting from ts+dur.
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["args"], dict)
        # The pool ran: worker spans land on per-worker tracks, the
        # parent stays on tid 0.
        tids = {event["tid"] for event in events}
        assert 0 in tids and len(tids) > 1
        # json round-trip stays loadable.
        json.loads(json.dumps(payload))

    def test_jsonl_depth_first_with_explicit_depth(self, small_design):
        tracer, _ = sampled_mgl(small_design, workers=0, sample_every=4)
        lines = tracer.to_jsonl().strip().split("\n")
        assert len(lines) == tracer.span_count()
        records = [json.loads(line) for line in lines]
        assert records[0]["depth"] == 0 and records[0]["event"] == "span"
        for prev, record in zip(records, records[1:]):
            # Depth-first: each record nests at most one level deeper.
            assert record["depth"] <= prev["depth"] + 1
