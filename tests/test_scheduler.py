"""Tests for the deterministic window scheduler (paper §3.5)."""

import pytest

from repro.checker import check_legal
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams


def params_with_capacity(capacity: int) -> LegalizerParams:
    return LegalizerParams(routability=False, scheduler_capacity=capacity)


class TestScheduler:
    def test_capacity_gt_one_legal(self, small_design):
        placement = MGLegalizer(small_design, params_with_capacity(4)).run()
        assert check_legal(placement).is_legal

    def test_deterministic_per_capacity(self, small_design):
        a = MGLegalizer(small_design, params_with_capacity(4)).run()
        b = MGLegalizer(small_design, params_with_capacity(4)).run()
        assert a.x == b.x and a.y == b.y

    def test_fence_design_with_scheduler(self, fence_design):
        placement = MGLegalizer(fence_design, params_with_capacity(8)).run()
        assert check_legal(placement).is_legal

    def test_batches_use_disjoint_windows(self, small_design):
        """Instrument the scheduler: every batch must be pairwise disjoint."""
        from repro.core import scheduler as sched_mod
        from repro.core.occupancy import Occupancy
        from repro.model.placement import Placement

        legalizer = MGLegalizer(small_design, params_with_capacity(6))
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        scheduler = sched_mod.WindowScheduler(legalizer, occupancy)

        original_try = legalizer.try_insert
        batch_windows = []

        def spy(occ, cell, window):
            batch_windows.append(window)
            return original_try(occ, cell, window)

        legalizer.try_insert = spy
        scheduler.run()
        assert scheduler.batches_run >= 1
        assert check_legal(placement).is_legal

    def test_quality_close_to_sequential(self, small_design):
        seq = MGLegalizer(small_design, params_with_capacity(1)).run()
        par = MGLegalizer(small_design, params_with_capacity(8)).run()
        seq_total = seq.total_displacement_sites()
        par_total = par.total_displacement_sites()
        # Batched windows may reorder decisions but not wreck quality.
        assert par_total <= seq_total * 1.5 + 50
