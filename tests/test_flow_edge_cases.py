"""Edge-case tests for the flow solvers and graph utilities."""

import pytest

from repro.flow.graph import INFINITE, FlowGraph
from repro.flow.network_simplex import (
    InfeasibleFlowError,
    NetworkSimplex,
    solve_min_cost_flow,
)
from repro.flow.ssp import solve_ssp


class TestNetworkSimplexEdgeCases:
    def test_single_node_no_edges(self):
        graph = FlowGraph()
        graph.add_node()
        result = solve_min_cost_flow(graph)
        assert result.flows == []
        assert result.cost == 0

    def test_zero_capacity_edges_ignored(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node(supply=-1)
        graph.add_edge(0, 1, capacity=0, cost=-100)  # tempting but unusable
        graph.add_edge(0, 1, capacity=1, cost=5)
        result = solve_min_cost_flow(graph)
        assert result.flows == [0, 1]
        assert result.cost == 5

    def test_iteration_counter_advances(self):
        graph = FlowGraph()
        graph.add_node(supply=3)
        graph.add_node(supply=-3)
        graph.add_edge(0, 1, capacity=3, cost=2)
        solver = NetworkSimplex(graph)
        result = solver.solve()
        assert result.iterations == solver.iterations
        assert result.iterations >= 1

    def test_iteration_budget_guard(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node(supply=-1)
        graph.add_edge(0, 1, capacity=1, cost=0)
        with pytest.raises(RuntimeError, match="iteration budget"):
            NetworkSimplex(graph).solve(max_iterations=0)

    def test_potentials_length(self):
        graph = FlowGraph()
        for _ in range(4):
            graph.add_node()
        graph.add_edge(0, 3, capacity=2, cost=1)
        result = solve_min_cost_flow(graph)
        assert len(result.potentials) == 4

    def test_self_balanced_negative_chain(self):
        # Circulation exploits a profitable cycle through three nodes.
        graph = FlowGraph()
        for _ in range(3):
            graph.add_node()
        graph.add_edge(0, 1, capacity=4, cost=-5)
        graph.add_edge(1, 2, capacity=4, cost=1)
        graph.add_edge(2, 0, capacity=4, cost=1)
        result = solve_min_cost_flow(graph)
        assert result.flows == [4, 4, 4]
        assert result.cost == 4 * (-3)

    def test_disconnected_components(self):
        graph = FlowGraph()
        graph.add_node(supply=2)
        graph.add_node(supply=-2)
        graph.add_node(supply=1)
        graph.add_node(supply=-1)
        graph.add_edge(0, 1, capacity=5, cost=1)
        graph.add_edge(2, 3, capacity=5, cost=3)
        result = solve_min_cost_flow(graph)
        assert result.flows == [2, 1]
        assert result.cost == 2 + 3

    def test_infeasible_isolated_demand(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node(supply=-1)
        graph.add_node()  # isolated
        with pytest.raises(InfeasibleFlowError):
            solve_min_cost_flow(graph)


class TestSSPEdgeCases:
    def test_large_supplies_bottleneck(self):
        graph = FlowGraph()
        graph.add_node(supply=1000)
        graph.add_node(supply=-1000)
        graph.add_edge(0, 1, capacity=INFINITE, cost=1)
        result = solve_ssp(graph)
        assert result.flows == [1000]
        assert result.iterations <= 3  # bulk augmentation, not unit steps

    def test_multi_source_multi_sink(self):
        graph = FlowGraph()
        graph.add_node(supply=2)
        graph.add_node(supply=3)
        graph.add_node(supply=-4)
        graph.add_node(supply=-1)
        for u in (0, 1):
            for v in (2, 3):
                graph.add_edge(u, v, capacity=10, cost=u + v)
        result = solve_ssp(graph)
        balance = [0, 0, 0, 0]
        for edge, flow in zip(graph.edges, result.flows):
            balance[edge.tail] -= flow
            balance[edge.head] += flow
        assert balance == [-2, -3, 4, 1]

    def test_expensive_detour_avoided(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node()
        graph.add_node(supply=-1)
        graph.add_edge(0, 2, capacity=1, cost=10)  # direct
        graph.add_edge(0, 1, capacity=1, cost=1)
        graph.add_edge(1, 2, capacity=1, cost=2)  # detour total 3
        result = solve_ssp(graph)
        assert result.flows == [0, 1, 1]
