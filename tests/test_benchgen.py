"""Tests for the synthetic benchmark generator and suite definitions."""

import pytest

from repro.benchgen import (
    SyntheticSpec,
    generate_design,
    iccad2017_suite,
    ispd2015_suite,
)


def small_spec(**overrides):
    base = dict(
        name="t",
        cells_by_height={1: 120, 2: 12, 3: 6, 4: 4},
        density=0.55,
        seed=5,
    )
    base.update(overrides)
    return SyntheticSpec(**base)


class TestGenerateDesign:
    def test_cell_counts_match_spec(self):
        design = generate_design(small_spec())
        by_height = {}
        for cell in design.cells:
            by_height[cell.cell_type.height] = (
                by_height.get(cell.cell_type.height, 0) + 1
            )
        assert by_height == {1: 120, 2: 12, 3: 6, 4: 4}

    def test_density_near_target(self):
        design = generate_design(small_spec(density=0.6))
        assert 0.45 <= design.density() <= 0.65

    def test_deterministic(self):
        a = generate_design(small_spec())
        b = generate_design(small_spec())
        assert [c.name for c in a.cells] == [c.name for c in b.cells]
        assert list(a.gp_x) == list(b.gp_x)
        assert a.num_rows == b.num_rows

    def test_seed_changes_design(self):
        a = generate_design(small_spec(seed=1))
        b = generate_design(small_spec(seed=2))
        assert list(a.gp_x) != list(b.gp_x)

    def test_fences_generated_and_capacity_bounded(self):
        design = generate_design(small_spec(num_fences=2))
        assert len(design.fences) >= 1
        for fence in design.fences:
            capacity = sum(r.area for r in fence.rects)
            used = sum(
                c.cell_type.width * c.cell_type.height
                for c in design.cells
                if c.fence_id == fence.fence_id
            )
            assert used <= 0.9 * capacity

    def test_rails_and_pins(self):
        design = generate_design(small_spec(with_rails=True, num_io_pins=5))
        assert design.rails.rails
        assert len(design.rails.io_pins) == 5
        assert any(ct.pins for ct in design.technology.cell_types)

    def test_netlist_generated(self):
        design = generate_design(small_spec(nets_per_cell=0.5))
        assert len(design.netlist) == design.num_cells // 2
        for net in design.netlist:
            assert 2 <= len(net.pins) <= 5

    def test_edge_rules(self):
        design = generate_design(small_spec(with_edge_rules=True))
        assert len(design.technology.edge_spacing) > 0

    def test_double_height_halved(self):
        design = generate_design(
            small_spec(double_height_halved=True, cells_by_height={1: 50, 2: 10})
        )
        singles = [ct for ct in design.technology.cell_types if ct.height == 1]
        doubles = [ct for ct in design.technology.cell_types if ct.height == 2]
        assert max(d.width for d in doubles) <= max(s.width for s in singles) // 2

    def test_validates(self):
        design = generate_design(small_spec(num_fences=2, with_rails=True))
        design.validate()  # must not raise

    def test_gp_positions_inside_chip(self):
        design = generate_design(small_spec())
        for cell in range(design.num_cells):
            ct = design.cell_type_of(cell)
            assert 0 <= design.gp_x[cell] <= design.num_sites - ct.width
            assert 0 <= design.gp_y[cell] <= design.num_rows - ct.height


class TestSuites:
    def test_iccad_suite_complete(self):
        cases = iccad2017_suite(scale=0.002)
        assert len(cases) == 16  # every Table 1 row
        names = {case.name for case in cases}
        assert "des_perf_1" in names
        assert "pci_bridge32_b_md3" in names

    def test_ispd_suite_complete(self):
        cases = ispd2015_suite(scale=0.002)
        assert len(cases) == 20  # every Table 2 row
        names = {case.name for case in cases}
        assert "superblue19" in names and "fft_1" in names

    def test_name_filter(self):
        cases = iccad2017_suite(scale=0.002, names=["fft_a_md3"])
        assert len(cases) == 1

    def test_iccad_case_builds_with_rails_and_fences(self):
        case = iccad2017_suite(scale=0.002, names=["fft_a_md2"])[0]
        design = case.build()
        assert design.rails.rails
        assert design.fences

    def test_ispd_case_ten_percent_doubles(self):
        case = ispd2015_suite(scale=0.01, names=["fft_a"])[0]
        design = case.build()
        doubles = sum(1 for c in design.cells if c.cell_type.height == 2)
        assert doubles / design.num_cells == pytest.approx(0.10, abs=0.02)

    def test_superblue_gets_extra_scaling(self):
        big = ispd2015_suite(scale=0.002, names=["superblue12"])[0]
        normal = ispd2015_suite(scale=0.002, names=["matrix_mult_1"])[0]
        ratio_big = big.spec.total_cells() / 1287037
        ratio_normal = normal.spec.total_cells() / 155325
        assert ratio_big < ratio_normal
