"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.txt"
    code = main([
        "generate", "clidesign", "-o", str(path),
        "--cells", "1:80", "2:8", "--density", "0.5", "--seed", "3",
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_loadable_design(self, design_file):
        from repro.io import load_design

        design = load_design(design_file)
        assert design.num_cells == 88
        assert design.name == "clidesign"

    def test_rails_flag(self, tmp_path):
        path = tmp_path / "d.txt"
        main([
            "generate", "railed", "-o", str(path),
            "--cells", "1:40", "--rails", "--io-pins", "3",
        ])
        from repro.io import load_design

        design = load_design(path)
        assert design.rails.rails
        assert len(design.rails.io_pins) == 3


class TestLegalizeAndCheck:
    def test_round_trip(self, design_file, tmp_path, capsys):
        placement_file = tmp_path / "placement.txt"
        code = main([
            "legalize", str(design_file), "-o", str(placement_file),
            "--no-routability",
        ])
        assert code == 0
        assert placement_file.exists()

        code = main(["check", str(design_file), str(placement_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "legality: legal" in out
        assert "score S" in out

    def test_check_detects_illegal(self, design_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        from repro.io import load_design

        design = load_design(design_file)
        lines = ["place %d 0 0" % c for c in range(design.num_cells)]
        bad.write_text("\n".join(lines) + "\n")
        code = main(["check", str(design_file), str(bad)])
        assert code == 1
        assert "overlap" in capsys.readouterr().out

    def test_window_flag(self, design_file, tmp_path):
        placement_file = tmp_path / "p.txt"
        code = main([
            "legalize", str(design_file), "-o", str(placement_file),
            "--no-routability", "--window", "16", "6",
        ])
        assert code == 0


class TestSvg:
    def test_renders(self, design_file, tmp_path):
        placement_file = tmp_path / "p.txt"
        main(["legalize", str(design_file), "-o", str(placement_file),
              "--no-routability"])
        svg_file = tmp_path / "out.svg"
        code = main([
            "svg", str(design_file), str(placement_file),
            "-o", str(svg_file), "--displacement",
        ])
        assert code == 0
        assert svg_file.read_text().startswith("<svg")


class TestCompare:
    def test_runs_all(self, design_file, capsys):
        code = main(["compare", str(design_file)])
        assert code == 0
        out = capsys.readouterr().out
        for tag in ("tetris", "mll", "abacus", "lcp", "ours"):
            assert tag in out
