"""Public-API hygiene: exports exist, version consistent, imports clean."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.model",
    "repro.flow",
    "repro.checker",
    "repro.core",
    "repro.baselines",
    "repro.benchgen",
    "repro.gp",
    "repro.io",
    "repro.viz",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES[:-1])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version_matches_pyproject():
    import re
    from pathlib import Path

    import repro

    pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
    match = re.search(r'version = "([^"]+)"', pyproject.read_text())
    assert match and match.group(1) == repro.__version__


def test_top_level_convenience():
    import repro

    assert callable(repro.legalize)
    assert repro.LegalizerParams().window_width > 0


def test_module_docstrings_everywhere():
    """Every public module carries a real docstring (release hygiene)."""
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, info.name
