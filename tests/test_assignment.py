"""Tests for min-cost bipartite assignment."""

import random

import pytest

from repro.flow.assignment import (
    AssignmentResult,
    assignment_cost_matrix,
    min_cost_assignment,
)


class TestMinCostAssignment:
    def test_identity_optimal(self):
        costs = [[0, 5], [5, 0]]
        result = min_cost_assignment(costs)
        assert result.columns == [0, 1]
        assert result.cost == 0

    def test_swap_optimal(self):
        costs = [[5, 0], [0, 5]]
        result = min_cost_assignment(costs)
        assert result.columns == [1, 0]
        assert result.cost == 0

    def test_empty(self):
        assert min_cost_assignment([]).columns == []

    def test_single(self):
        result = min_cost_assignment([[7]])
        assert result.columns == [0]
        assert result.cost == 7

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            min_cost_assignment([[1, 2], [3]])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            min_cost_assignment([[1]], backend="nope")

    def test_backends_agree(self):
        rng = random.Random(5)
        for _ in range(20):
            n = rng.randint(1, 8)
            costs = [[rng.randint(0, 50) for _ in range(n)] for _ in range(n)]
            scipy_result = min_cost_assignment(costs, backend="scipy")
            flow_result = min_cost_assignment(costs, backend="flow")
            assert scipy_result.cost == flow_result.cost
            # Both are perfect matchings.
            assert sorted(scipy_result.columns) == list(range(n))
            assert sorted(flow_result.columns) == list(range(n))

    def test_huge_costs_force_exact_backend(self):
        # 2**53 + 1 is not representable in float64; auto must pick flow.
        big = 2**53 + 1
        costs = [[big, big - 1], [big - 1, big]]
        result = min_cost_assignment(costs, backend="auto")
        assert result.columns == [1, 0]
        assert result.cost == 2 * (big - 1)

    def test_flow_backend_exact_optimum_bruteforce(self):
        import itertools

        rng = random.Random(9)
        for _ in range(10):
            n = rng.randint(2, 5)
            costs = [[rng.randint(0, 30) for _ in range(n)] for _ in range(n)]
            best = min(
                sum(costs[i][p[i]] for i in range(n))
                for p in itertools.permutations(range(n))
            )
            assert min_cost_assignment(costs, backend="flow").cost == best


def test_assignment_cost_matrix():
    matrix = assignment_cost_matrix(3, lambda i, j: 10 * i + j)
    assert matrix == [[0, 1, 2], [10, 11, 12], [20, 21, 22]]
