"""Edge-spacing across segment (fence) boundaries.

Sites are contiguous across a fence boundary, so two cells abutting it
from opposite sides are row-adjacent and subject to edge rules.  MGL and
stage 3 must both respect that.
"""

import pytest

from repro.checker import check_legal, count_routability_violations
from repro.core.flowopt import build_problem, optimize_fixed_row_order
from repro.core.insertion import InsertionContext
from repro.core.occupancy import Occupancy
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.model.technology import CellType, EdgeSpacingTable, Technology


@pytest.fixture
def boundary_design():
    tech = Technology(
        cell_types=[CellType("A", 3, 1, left_edge=1, right_edge=1)],
        edge_spacing=EdgeSpacingTable([(1, 1, 2)]),
    )
    design = Design(tech, num_rows=2, num_sites=40, name="boundary")
    design.add_fence(FenceRegion(1, "f", [Rect(20, 0, 40, 2)]))
    return design, tech


class TestMglAcrossBoundary:
    def test_insertion_respects_gap_to_outside_cell(self, boundary_design):
        design, tech = boundary_design
        # A fence cell sits right at the boundary (x=20).
        inside = design.add_cell("in", tech.type_named("A"), 20.0, 0.0, fence_id=1)
        target = design.add_cell("t", tech.type_named("A"), 19.0, 0.0, fence_id=0)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        placement.move(inside, 20, 0)
        occupancy.add(inside)
        context = InsertionContext(design, occupancy, target, design.chip_rect)
        results = [
            context.evaluate(r, g)
            for r, g in context.enumerate_insertion_points()
        ]
        best = min((r for r in results if r), key=lambda r: r.cost)
        # Default-fence segment is [0, 20); the target (width 3, rule 2)
        # must keep its right edge at most 20 - 2 - ... i.e. x <= 15.
        assert best.x + 3 + 2 <= 20
        placement.move(target, best.x, best.y)
        occupancy.add(target)
        assert count_routability_violations(placement).edge_violations == 0

    def test_push_against_boundary_respects_outside_cell(self, boundary_design):
        design, tech = boundary_design
        inside = design.add_cell("in", tech.type_named("A"), 20.0, 0.0, fence_id=1)
        local = design.add_cell("loc", tech.type_named("A"), 12.0, 0.0, fence_id=0)
        target = design.add_cell("t", tech.type_named("A"), 10.0, 0.0, fence_id=0)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        placement.move(inside, 20, 0)
        occupancy.add(inside)
        placement.move(local, 12, 0)
        occupancy.add(local)
        context = InsertionContext(design, occupancy, target, design.chip_rect)
        results = [
            context.evaluate(r, g)
            for r, g in context.enumerate_insertion_points()
        ]
        for result in results:
            if result is None:
                continue
            # Apply on a scratch copy and verify zero edge violations.
            scratch = placement.copy()
            for cell, new_x in result.moves:
                scratch.x[cell] = new_x
            scratch.move(target, result.x, result.y)
            report = count_routability_violations(scratch)
            assert report.edge_violations == 0, (result.x, result.moves)


class TestStage3AcrossBoundary:
    def test_bounds_freeze_boundary_gap(self, boundary_design):
        design, tech = boundary_design
        inside = design.add_cell("in", tech.type_named("A"), 20.0, 0.0, fence_id=1)
        outside = design.add_cell("out", tech.type_named("A"), 5.0, 0.0, fence_id=0)
        placement = Placement(design)
        placement.move(inside, 20, 0)
        placement.move(outside, 15, 0)  # right edge 18, gap 2: legal
        params = LegalizerParams(routability=False)
        problem = build_problem(placement, params)
        index = problem.index_of()
        # The outside cell may not move past 20 - (3 + 2) = 15.
        assert problem.upper[index[outside]] <= 15
        optimize_fixed_row_order(placement, params)
        assert count_routability_violations(placement).edge_violations == 0
