"""Structural tests for the HPWL dual graph (supplies, arcs, recovery)."""

import pytest

from repro.core.flowopt import FixedRowOrderProblem
from repro.core.hpwlopt import HpwlProblem, build_hpwl_dual_graph
from repro.flow.graph import edges_by_name
from repro.flow.validate import check_complementary_slackness
from repro.flow.network_simplex import NetworkSimplex


def two_cell_problem():
    base = FixedRowOrderProblem(
        cells=[0, 1],
        weights=[1, 1],
        widths=[2, 2],
        gp_x=[5, 15],
        dy=[0, 0],
        lower=[0, 0],
        upper=[28, 28],
        pairs=[(0, 1, 2)],
    )
    problem = HpwlProblem(base=base)
    problem.nets.append(([(0, 1), (1, 1)], [], 1))
    return problem


class TestGraphStructure:
    def test_net_nodes_and_supplies(self):
        problem = two_cell_problem()
        graph, v_z = build_hpwl_dual_graph(problem, hpwl_weight=10)
        # 2 cells + v_z + (L, R) per net.
        assert graph.num_nodes == 5
        # Net-L carries +K*w, net-R carries -K*w; everything else zero.
        assert sorted(graph.supplies) == [-10, 0, 0, 0, 10]
        assert graph.total_supply_imbalance() == 0

    def test_net_arcs(self):
        problem = two_cell_problem()
        graph, _ = build_hpwl_dual_graph(problem, hpwl_weight=10)
        names = edges_by_name(graph)
        for k in (0, 1):
            assert f"nl0_{k}" in names
            assert f"nr0_{k}" in names
        # Pin offsets become arc costs.
        assert graph.edges[names["nl0_0"]].cost == 1
        assert graph.edges[names["nr0_0"]].cost == -1

    def test_terminal_arcs(self):
        problem = two_cell_problem()
        problem.nets[0] = (problem.nets[0][0], [20], 1)
        graph, _ = build_hpwl_dual_graph(problem, hpwl_weight=10)
        names = edges_by_name(graph)
        assert "ntl0_20" in names and "ntr0_20" in names
        assert graph.edges[names["ntl0_20"]].cost == 20
        assert graph.edges[names["ntr0_20"]].cost == -20

    def test_solution_certified_optimal(self):
        problem = two_cell_problem()
        graph, v_z = build_hpwl_dual_graph(problem, hpwl_weight=10)
        result = NetworkSimplex(graph).solve()
        assert check_complementary_slackness(graph, result) == []
        xs = [result.potentials[v_z] - result.potentials[k] for k in (0, 1)]
        assert problem.base.check_feasible(xs) == []
        # High HPWL weight: the two cells abut despite their distant GPs.
        assert xs[1] - xs[0] == 2
