"""Unit tests for the Design container."""

import pytest

from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.technology import CellType, Technology


class TestConstruction:
    def test_invalid_dimensions(self, basic_tech):
        with pytest.raises(ValueError):
            Design(basic_tech, num_rows=0, num_sites=10)
        with pytest.raises(ValueError):
            Design(basic_tech, num_rows=10, num_sites=10, power_parity=2)
        with pytest.raises(ValueError):
            Design(basic_tech, num_rows=10, num_sites=10, site_width=0)

    def test_chip_rects(self, empty_design):
        assert empty_design.chip_rect == Rect(0, 0, 100, 20)
        length = empty_design.chip_rect_length_units
        assert length.xhi == pytest.approx(100 * 0.2)
        assert length.yhi == pytest.approx(20 * 2.0)

    def test_x_unit_rows(self, empty_design):
        assert empty_design.x_unit_rows == pytest.approx(0.1)


class TestCells:
    def test_add_and_lookup(self, empty_design, basic_tech):
        index = empty_design.add_cell("a", basic_tech.type_named("S2"), 5.0, 3.0)
        assert index == 0
        assert empty_design.cell_type_of(0).name == "S2"
        assert empty_design.fence_of(0) == 0
        assert empty_design.gp_x[0] == 5.0

    def test_gp_arrays_track_additions(self, empty_design, basic_tech):
        empty_design.add_cell("a", basic_tech.type_named("S2"), 1.0, 1.0)
        assert len(empty_design.gp_x_array) == 1
        empty_design.add_cell("b", basic_tech.type_named("S2"), 2.0, 2.0)
        assert len(empty_design.gp_x_array) == 2
        assert empty_design.gp_x_array[1] == 2.0

    def test_cells_by_height_excludes_fixed(self, empty_design, basic_tech):
        empty_design.add_cell("a", basic_tech.type_named("S2"), 0, 0)
        empty_design.add_cell("f", basic_tech.type_named("D3"), 0, 2, fixed=True)
        groups = empty_design.cells_by_height()
        assert groups == {1: [0]}
        assert empty_design.movable_cells() == [0]


class TestParity:
    def test_even_height_parity(self, empty_design, basic_tech):
        cell = empty_design.add_cell("d", basic_tech.type_named("D3"), 0, 0)
        assert empty_design.row_parity_ok(cell, 0)
        assert not empty_design.row_parity_ok(cell, 1)

    def test_odd_height_any_row(self, empty_design, basic_tech):
        cell = empty_design.add_cell("t", basic_tech.type_named("T3"), 0, 0)
        assert empty_design.row_parity_ok(cell, 0)
        assert empty_design.row_parity_ok(cell, 1)

    def test_parity_one_design(self, basic_tech):
        design = Design(basic_tech, 10, 10, power_parity=1)
        cell = design.add_cell("d", basic_tech.type_named("D3"), 0, 0)
        assert not design.row_parity_ok(cell, 0)
        assert design.row_parity_ok(cell, 1)


class TestSegmentsAndFences:
    def test_segment_at(self, empty_design):
        seg = empty_design.segment_at(3, 50)
        assert seg is not None and seg.fence_id == 0
        assert empty_design.segment_at(25, 50) is None  # row outside chip

    def test_fence_invalidates_cache(self, empty_design):
        before = empty_design.segments_in_row(5)
        assert len(before) == 1
        empty_design.add_fence(FenceRegion(1, "f", [Rect(10, 0, 30, 10)]))
        after = empty_design.segments_in_row(5)
        assert len(after) == 3

    def test_duplicate_fence_id_rejected(self, empty_design):
        empty_design.add_fence(FenceRegion(1, "a", [Rect(0, 0, 5, 5)]))
        with pytest.raises(ValueError):
            empty_design.add_fence(FenceRegion(1, "b", [Rect(10, 10, 15, 15)]))

    def test_fence_region_lookup(self, empty_design):
        fence = FenceRegion(2, "x", [Rect(0, 0, 5, 5)])
        empty_design.add_fence(fence)
        assert empty_design.fence_region(2) is fence
        with pytest.raises(KeyError):
            empty_design.fence_region(9)


class TestValidate:
    def test_overlapping_fences_rejected(self, empty_design):
        empty_design.add_fence(FenceRegion(1, "a", [Rect(0, 0, 10, 10)]))
        empty_design.add_fence(FenceRegion(2, "b", [Rect(5, 5, 15, 15)]))
        with pytest.raises(ValueError, match="overlap"):
            empty_design.validate()

    def test_fence_outside_chip_rejected(self, empty_design):
        empty_design.add_fence(FenceRegion(1, "a", [Rect(90, 0, 120, 5)]))
        with pytest.raises(ValueError, match="outside chip"):
            empty_design.validate()

    def test_non_integer_fence_rejected(self, empty_design):
        empty_design.add_fence(FenceRegion(1, "a", [Rect(0.5, 0, 10, 5)]))
        with pytest.raises(ValueError, match="non-integer"):
            empty_design.validate()

    def test_unknown_fence_assignment_rejected(self, empty_design, basic_tech):
        empty_design.add_cell("a", basic_tech.type_named("S2"), 0, 0, fence_id=7)
        with pytest.raises(ValueError, match="unknown fence"):
            empty_design.validate()

    def test_too_tall_cell_rejected(self, basic_tech):
        design = Design(basic_tech, num_rows=3, num_sites=10)
        design.add_cell("q", basic_tech.type_named("Q4"), 0, 0)
        with pytest.raises(ValueError, match="taller"):
            design.validate()

    def test_valid_design_passes(self, small_design):
        small_design.validate()


def test_density(small_design):
    # fill_random targets 55%.
    assert 0.5 < small_design.density() < 0.6
