"""Unit tests for row segmentation by fences and blockages."""

from repro.model.fence import DEFAULT_FENCE, FenceRegion
from repro.model.geometry import Rect
from repro.model.row import Row, Segment, build_row_segments


def rows(n=4, width=50):
    return [Row(i, 0, width) for i in range(n)]


class TestSegment:
    def test_width_and_interval(self):
        seg = Segment(0, 5, 15, 0)
        assert seg.width == 10
        assert seg.interval.lo == 5

    def test_contains_span(self):
        seg = Segment(0, 5, 15, 0)
        assert seg.contains_span(5, 15)
        assert seg.contains_span(7, 10)
        assert not seg.contains_span(4, 10)
        assert not seg.contains_span(10, 16)


class TestBuildRowSegments:
    def test_no_fences_no_blockages(self):
        segments = build_row_segments(rows(2), [])
        assert segments[0] == [Segment(0, 0, 50, DEFAULT_FENCE)]
        assert segments[1] == [Segment(1, 0, 50, DEFAULT_FENCE)]

    def test_blockage_splits_row(self):
        segments = build_row_segments(rows(2), [], [Rect(10, 0, 20, 1)])
        assert segments[0] == [
            Segment(0, 0, 10, DEFAULT_FENCE),
            Segment(0, 20, 50, DEFAULT_FENCE),
        ]
        # Row 1 untouched (blockage only covers row 0).
        assert segments[1] == [Segment(1, 0, 50, DEFAULT_FENCE)]

    def test_fence_partitions_row(self):
        fence = FenceRegion(1, "f", [Rect(10, 0, 30, 2)])
        segments = build_row_segments(rows(3), [fence])
        assert segments[0] == [
            Segment(0, 0, 10, DEFAULT_FENCE),
            Segment(0, 10, 30, 1),
            Segment(0, 30, 50, DEFAULT_FENCE),
        ]
        assert segments[2] == [Segment(2, 0, 50, DEFAULT_FENCE)]

    def test_fence_at_row_edge(self):
        fence = FenceRegion(1, "f", [Rect(0, 0, 20, 1)])
        segments = build_row_segments(rows(1), [fence])
        assert segments[0] == [
            Segment(0, 0, 20, 1),
            Segment(0, 20, 50, DEFAULT_FENCE),
        ]

    def test_fence_and_blockage(self):
        fence = FenceRegion(1, "f", [Rect(10, 0, 40, 1)])
        segments = build_row_segments(rows(1), [fence], [Rect(20, 0, 25, 1)])
        assert segments[0] == [
            Segment(0, 0, 10, DEFAULT_FENCE),
            Segment(0, 10, 20, 1),
            Segment(0, 25, 40, 1),
            Segment(0, 40, 50, DEFAULT_FENCE),
        ]

    def test_two_fences_same_row(self):
        fences = [
            FenceRegion(1, "a", [Rect(5, 0, 15, 1)]),
            FenceRegion(2, "b", [Rect(25, 0, 35, 1)]),
        ]
        segments = build_row_segments(rows(1), fences)
        ids = [seg.fence_id for seg in segments[0]]
        assert ids == [0, 1, 0, 2, 0]

    def test_adjacent_fence_rects_merge_within_same_fence(self):
        fence = FenceRegion(1, "f", [Rect(5, 0, 15, 1), Rect(15, 0, 25, 1)])
        segments = build_row_segments(rows(1), [fence])
        assert Segment(0, 5, 25, 1) in segments[0]

    def test_segments_disjoint_and_sorted(self):
        fence = FenceRegion(1, "f", [Rect(8, 0, 30, 3)])
        segments = build_row_segments(
            rows(3), [fence], [Rect(0, 0, 3, 3), Rect(40, 1, 45, 2)]
        )
        for row_segments in segments.values():
            for a, b in zip(row_segments, row_segments[1:]):
                assert a.x_hi <= b.x_lo
