"""Tests for flow validation certificates."""

import pytest

from repro.flow.graph import FlowGraph, FlowResult
from repro.flow.validate import (
    assert_optimal,
    check_complementary_slackness,
    check_feasible_flow,
    flow_cost,
)


def tiny_graph() -> FlowGraph:
    graph = FlowGraph()
    graph.add_node(supply=2)
    graph.add_node(supply=-2)
    graph.add_edge(0, 1, capacity=3, cost=4, name="main")
    return graph


class TestFeasibility:
    def test_valid_flow(self):
        assert check_feasible_flow(tiny_graph(), [2]) == []

    def test_wrong_length(self):
        problems = check_feasible_flow(tiny_graph(), [1, 1])
        assert "entries" in problems[0]

    def test_negative_flow(self):
        problems = check_feasible_flow(tiny_graph(), [-1])
        assert any("negative" in p for p in problems)

    def test_over_capacity(self):
        problems = check_feasible_flow(tiny_graph(), [4])
        assert any("exceeds capacity" in p for p in problems)

    def test_conservation_violation(self):
        problems = check_feasible_flow(tiny_graph(), [1])
        assert any("conservation" in p for p in problems)

    def test_named_edge_in_message(self):
        problems = check_feasible_flow(tiny_graph(), [4])
        assert any("main" in p for p in problems)


class TestComplementarySlackness:
    def test_optimal_passes(self):
        graph = tiny_graph()
        # flow 2 < cap, so reduced cost must be >= 0 and <= 0 -> exactly 0.
        result = FlowResult(flows=[2], potentials=[0, 4], cost=8)
        assert check_complementary_slackness(graph, result) == []
        assert_optimal(graph, result)

    def test_bad_potentials_fail(self):
        graph = tiny_graph()
        result = FlowResult(flows=[2], potentials=[0, 0], cost=8)
        problems = check_complementary_slackness(graph, result)
        assert problems
        with pytest.raises(AssertionError):
            assert_optimal(graph, result)


def test_flow_cost():
    graph = tiny_graph()
    assert flow_cost(graph, [2]) == 8
