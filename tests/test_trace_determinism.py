"""The repro.obs determinism contract (ISSUE 4 acceptance gates).

Two properties, checked at the MGL level and the full-flow level:

1. **Trace structure is worker-count-invariant.**  The span tree's
   structural content (names, attributes, children — timestamps and
   worker meta excluded) is a pure function of the legalization inputs,
   so its hash is bit-identical for ``scheduler_workers`` 0 and 2.
2. **Tracing never perturbs the algorithm.**  A traced run and an
   untraced (NullTracer) run produce bit-identical placements.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.legalizer import Legalizer, legalize
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.design import Design
from repro.model.technology import CellType, Technology
from repro.obs.tracer import SpanTracer


def build_design(seed: int, density: float) -> Design:
    rng = random.Random(seed)
    tech = Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("D2", 2, 2),
            CellType("T3", 3, 3),
        ]
    )
    design = Design(tech, num_rows=10, num_sites=50, name=f"trace{seed}")
    target = density * 10 * 50
    area = 0
    index = 0
    while area < target:
        cell_type = rng.choice(tech.cell_types)
        design.add_cell(
            f"c{index}",
            cell_type,
            rng.uniform(0, 50 - cell_type.width),
            rng.uniform(0, 10 - cell_type.height),
        )
        area += cell_type.width * cell_type.height
        index += 1
    return design


def traced_mgl(design: Design, workers: int, capacity: int = 8):
    params = LegalizerParams(
        routability=False,
        scheduler_capacity=capacity,
        scheduler_workers=workers,
    )
    tracer = SpanTracer()
    placement = MGLegalizer(design, params, tracer=tracer).run()
    return tracer, (list(placement.x), list(placement.y))


class TestWorkerCountInvariance:
    def test_structure_hash_identical_serial_vs_pool(self, small_design):
        serial_tracer, serial_pos = traced_mgl(small_design, workers=0)
        pooled_tracer, pooled_pos = traced_mgl(small_design, workers=2)
        assert serial_tracer.structure_hash() == pooled_tracer.structure_hash()
        assert serial_tracer.span_count() == pooled_tracer.span_count()
        assert serial_pos == pooled_pos

    def test_pool_spans_carry_worker_meta_serial_spans_do_not(
        self, small_design
    ):
        serial_tracer, _ = traced_mgl(small_design, workers=0)
        pooled_tracer, _ = traced_mgl(small_design, workers=2)

        def workers_seen(tracer):
            return {
                span.meta["worker"]
                for span in tracer._walk_all()
                if "worker" in span.meta
            }

        assert workers_seen(serial_tracer) == set()
        # The pool genuinely ran: some evaluate spans came from workers —
        # yet the structure hash matched (asserted above), because worker
        # origin lives in non-structural meta only.
        assert workers_seen(pooled_tracer)
        for span in pooled_tracer._walk_all():
            assert "worker" not in span.attrs

    @settings(max_examples=2, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), density=st.floats(0.3, 0.55))
    def test_property_structure_is_input_deterministic(self, seed, density):
        design = build_design(seed, density)
        serial_tracer, serial_pos = traced_mgl(design, workers=0)
        pooled_tracer, pooled_pos = traced_mgl(design, workers=2)
        assert serial_tracer.structure_hash() == pooled_tracer.structure_hash()
        assert serial_pos == pooled_pos
        # Replaying serially reproduces the exact same tree, too.
        replay_tracer, _ = traced_mgl(design, workers=0)
        assert replay_tracer.structure_hash() == serial_tracer.structure_hash()


class TestTracingDoesNotPerturb:
    def test_traced_and_untraced_placements_identical(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=8)
        untraced = MGLegalizer(small_design, params).run()
        tracer = SpanTracer()
        traced = MGLegalizer(small_design, params, tracer=tracer).run()
        assert traced.x == untraced.x and traced.y == untraced.y
        assert tracer.span_count() > 0

    def test_full_flow_traced_matches_untraced(self, small_design):
        params = LegalizerParams(routability=False)
        baseline = legalize(small_design, params).placement
        tracer = SpanTracer()
        traced = legalize(small_design, params, tracer=tracer).placement
        assert traced.x == baseline.x and traced.y == baseline.y


class TestFullFlowTree:
    def test_stage_spans_under_one_legalize_root(self, small_design):
        params = LegalizerParams(routability=False)
        tracer = SpanTracer()
        Legalizer(small_design, params, tracer=tracer).run()
        assert [root.name for root in tracer.roots] == ["legalize"]
        root = tracer.roots[0]
        assert root.attrs["design"] == "small"
        assert root.attrs["cells"] == small_design.num_cells
        stages = [child.name for child in root.children]
        assert stages[0] == "mgl"
        assert "matching" in stages and "flow_opt" in stages
        mgl = root.children[0]
        assert mgl.attrs["cells_placed"] == small_design.num_cells
        # Every cell search shows up as a window span under mgl.
        windows = [c for c in mgl.children if c.name == "window"]
        assert len(windows) == small_design.num_cells
        evaluates = [
            grandchild
            for window in windows
            for grandchild in window.children
            if grandchild.name == "evaluate"
        ]
        assert evaluates and all(
            "evaluated" in e.attrs and "found" in e.attrs for e in evaluates
        )

    def test_matching_spans_record_displacement_attrs(self, small_design):
        tracer = SpanTracer()
        Legalizer(
            small_design, LegalizerParams(routability=False), tracer=tracer
        ).run()
        by_name = {c.name: c for c in tracer.roots[0].children}
        for stage in ("matching", "flow_opt"):
            assert by_name[stage].attrs["avg_disp"] >= 0.0
            assert by_name[stage].attrs["max_disp"] >= 0.0
