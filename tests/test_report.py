"""Tests for the placement quality report."""

import pytest

from repro.checker import build_report, format_report, placement_report
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.placement import Placement


@pytest.fixture
def legal_placement(fence_design):
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    return MGLegalizer(fence_design, params).run()


class TestBuildReport:
    def test_basic_fields(self, legal_placement):
        report = build_report(legal_placement)
        assert report.legal
        assert report.avg_displacement >= 0
        assert report.max_displacement >= report.avg_displacement

    def test_height_stats_cover_all_heights(self, legal_placement):
        design = legal_placement.design
        report = build_report(legal_placement)
        expected = sorted(design.cells_by_height())
        assert [s.height for s in report.height_stats] == expected
        total = sum(s.count for s in report.height_stats)
        assert total == len(design.movable_cells())

    def test_height_stats_ordering(self, legal_placement):
        report = build_report(legal_placement)
        for stats in report.height_stats:
            assert stats.p50 <= stats.p90 <= stats.max

    def test_histogram_sums_to_movable(self, legal_placement):
        report = build_report(legal_placement)
        assert sum(report.histogram) == len(
            legal_placement.design.movable_cells()
        )
        assert len(report.histogram_edges) == len(report.histogram) + 1

    def test_fence_stats(self, legal_placement):
        report = build_report(legal_placement)
        assert len(report.fence_stats) == 1
        fence = report.fence_stats[0]
        assert fence.cells > 0
        assert 0 < fence.utilization <= 1.0

    def test_illegal_placement_reported(self, fence_design):
        placement = Placement(fence_design)  # everyone at (0, 0): overlaps
        report = build_report(placement)
        assert not report.legal
        assert "overlap" in report.legality_summary


class TestFormat:
    def test_contains_sections(self, legal_placement):
        text = format_report(build_report(legal_placement))
        assert "legality" in text
        assert "per-height displacement" in text
        assert "displacement histogram" in text
        assert "fences:" in text

    def test_one_call(self, legal_placement):
        assert "score" in placement_report(legal_placement)

    def test_histogram_bars_scaled(self, legal_placement):
        report = build_report(legal_placement)
        text = format_report(report, width=20)
        longest = max(
            line.count("#") for line in text.splitlines() if "#" in line
        )
        assert longest <= 20 + 1
