"""Tests for the successive-shortest-paths reference solver."""

import random

import pytest

from repro.flow.graph import FlowGraph
from repro.flow.network_simplex import InfeasibleFlowError, solve_min_cost_flow
from repro.flow.ssp import solve_ssp
from repro.flow.validate import check_complementary_slackness


class TestSSP:
    def test_simple_path(self):
        graph = FlowGraph()
        graph.add_node(supply=2)
        graph.add_node()
        graph.add_node(supply=-2)
        graph.add_edge(0, 1, capacity=5, cost=1)
        graph.add_edge(1, 2, capacity=5, cost=2)
        result = solve_ssp(graph)
        assert result.cost == 6
        assert result.flows == [2, 2]

    def test_chooses_cheaper_path(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node(supply=-1)
        graph.add_edge(0, 1, capacity=1, cost=10)
        graph.add_edge(0, 1, capacity=1, cost=3)
        result = solve_ssp(graph)
        assert result.flows == [0, 1]

    def test_negative_edges_saturated_correctly(self):
        graph = FlowGraph()
        graph.add_node()
        graph.add_node()
        graph.add_edge(0, 1, capacity=3, cost=-2)
        graph.add_edge(1, 0, capacity=3, cost=1)
        result = solve_ssp(graph)
        # The -2/+1 cycle is profitable: circulate all 3 units.
        assert result.flows == [3, 3]
        assert result.cost == -3

    def test_infeasible(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node(supply=-1)
        with pytest.raises(InfeasibleFlowError):
            solve_ssp(graph)

    def test_imbalance_rejected(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        with pytest.raises(ValueError):
            solve_ssp(graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_network_simplex(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(15):
            n = rng.randint(2, 9)
            graph = FlowGraph()
            for _ in range(n):
                graph.add_node()
            for _ in range(rng.randint(1, 20)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                graph.add_edge(u, v, capacity=rng.randint(0, 6),
                               cost=rng.randint(-5, 8))
            total = 0
            for node in range(n - 1):
                supply = rng.randint(-2, 2)
                graph.supplies[node] = supply
                total += supply
            graph.supplies[n - 1] = -total

            try:
                ns_cost = solve_min_cost_flow(graph).cost
            except InfeasibleFlowError:
                with pytest.raises(InfeasibleFlowError):
                    solve_ssp(graph)
                continue
            result = solve_ssp(graph)
            assert result.cost == ns_cost
            assert check_complementary_slackness(graph, result) == []
