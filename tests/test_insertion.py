"""Tests for insertion-point enumeration and exact evaluation."""

import pytest

from repro.core.insertion import InsertionContext
from repro.core.occupancy import Occupancy
from repro.model.design import Design
from repro.model.fence import FenceRegion
from repro.model.geometry import Rect
from repro.model.placement import Placement
from repro.model.technology import CellType, EdgeSpacingTable, Technology


def make_design(edge_rules=False, fences=(), rows=6, sites=40):
    tech = Technology(
        cell_types=[
            CellType("W3", 3, 1, left_edge=1 if edge_rules else 0,
                     right_edge=1 if edge_rules else 0),
            CellType("W4", 4, 1),
            CellType("D3", 3, 2),
        ],
        edge_spacing=EdgeSpacingTable([(1, 1, 2)]) if edge_rules else
        EdgeSpacingTable(),
    )
    design = Design(tech, num_rows=rows, num_sites=sites, name="ins")
    for fence in fences:
        design.add_fence(fence)
    return design, tech


def place(design, placement, occupancy, type_name, x, y, gp_x=None, gp_y=None):
    tech = design.technology
    cell = design.add_cell(
        f"c{design.num_cells}", tech.type_named(type_name),
        x if gp_x is None else gp_x, y if gp_y is None else gp_y,
    )
    placement_growth(placement, design)
    placement.move(cell, x, y)
    occupancy.add(cell)
    return cell


def placement_growth(placement, design):
    while len(placement.x) < design.num_cells:
        placement.x.append(0)
        placement.y.append(0)


def context_for(design, placement, occupancy, type_name, gp_x, gp_y,
                window=None, **kwargs):
    cell = design.add_cell(
        f"t{design.num_cells}", design.technology.type_named(type_name),
        gp_x, gp_y,
    )
    placement_growth(placement, design)
    if window is None:
        window = design.chip_rect
    return cell, InsertionContext(design, occupancy, cell, window, **kwargs)


@pytest.fixture
def empty_setup():
    design, _tech = make_design()
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    return design, placement, occupancy


class TestGapEnumeration:
    def test_empty_row_single_gap(self, empty_setup):
        design, placement, occupancy = empty_setup
        _, ctx = context_for(design, placement, occupancy, "W3", 10.0, 2.0)
        gaps = ctx.gaps_in_row(2)
        assert len(gaps) == 1
        gap = gaps[0]
        assert gap.left_cell is None and gap.right_cell is None
        assert gap.lo_rough == 0 and gap.hi_rough == 40 - 3

    def test_gaps_around_local_cell(self, empty_setup):
        design, placement, occupancy = empty_setup
        place(design, placement, occupancy, "W4", 18, 2)
        _, ctx = context_for(design, placement, occupancy, "W3", 10.0, 2.0)
        gaps = ctx.gaps_in_row(2)
        assert len(gaps) == 2
        left_gap, right_gap = gaps
        assert left_gap.right_cell == 0
        assert right_gap.left_cell == 0

    def test_narrow_segment_skipped(self):
        design, _ = make_design(sites=10)
        design.add_blockage(Rect(2, 0, 10, 6))  # leaves only 2 sites
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        _, ctx = context_for(design, placement, occupancy, "W3", 1.0, 1.0)
        assert ctx.gaps_in_row(1) == []

    def test_fence_mismatch_skipped(self):
        fence = FenceRegion(1, "f", [Rect(10, 0, 30, 6)])
        design, _ = make_design(fences=[fence])
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        _, ctx = context_for(design, placement, occupancy, "W3", 20.0, 2.0)
        # Default-fence target: only the two outside segments qualify.
        rows = ctx.gaps_in_row(2)
        assert all(g.segment.fence_id == 0 for g in rows)
        assert len(rows) == 2

    def test_non_local_cell_is_wall(self, empty_setup):
        design, placement, occupancy = empty_setup
        wall = place(design, placement, occupancy, "W4", 22, 2)
        _, ctx = context_for(
            design, placement, occupancy, "W3", 10.0, 2.0,
            window=Rect(5, 1, 25, 4),  # wall cell (22..26) pokes out right
        )
        gaps = ctx.gaps_in_row(2)
        # Wall on the right: single gap bounded by the wall's left edge.
        assert len(gaps) == 1
        assert gaps[0].right_wall_cell == wall
        assert gaps[0].right_bound == 22


class TestEvaluate:
    def test_empty_row_places_at_gp(self, empty_setup):
        design, placement, occupancy = empty_setup
        _, ctx = context_for(design, placement, occupancy, "W3", 12.0, 2.0)
        result = ctx.evaluate(2, tuple(ctx.gaps_in_row(2)))
        assert result is not None
        assert result.x == 12
        assert result.cost == pytest.approx(0.0)
        assert result.moves == []

    def test_push_right_cheaper_than_far_gap(self, empty_setup):
        design, placement, occupancy = empty_setup
        blocker = place(design, placement, occupancy, "W4", 12, 2, gp_x=12)
        _, ctx = context_for(design, placement, occupancy, "W3", 11.0, 2.0)
        gaps = ctx.gaps_in_row(2)
        # Insert into the left gap: target wants x=11 but blocker at 12
        # allows only x <= 8 without pushing... pushing is not possible
        # leftward for a right gap; evaluate both and take the best.
        results = [ctx.evaluate(2, (gap,)) for gap in gaps]
        best = min((r for r in results if r is not None), key=lambda r: r.cost)
        assert best is not None

    def test_multirow_pushes_fit_both_rows(self, empty_setup):
        design, placement, occupancy = empty_setup
        a = place(design, placement, occupancy, "W3", 10, 0, gp_x=10)
        b = place(design, placement, occupancy, "W3", 10, 1, gp_x=10)
        _, ctx = context_for(design, placement, occupancy, "D3", 10.0, 0.0)
        combos = list(ctx.enumerate_insertion_points())
        evaluations = [ctx.evaluate(r, g) for r, g in combos]
        best = min((e for e in evaluations if e), key=lambda e: e.cost)
        # The target lands at its GP and pushes both cells right, or sits
        # beside them; either way the result must be feasible and cheap.
        assert best.cost <= 1.0

    def test_infeasible_when_full(self):
        design, _ = make_design(rows=1, sites=6)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        place(design, placement, occupancy, "W3", 0, 0)
        place(design, placement, occupancy, "W3", 3, 0)
        _, ctx = context_for(design, placement, occupancy, "W3", 2.0, 0.0)
        results = [ctx.evaluate(r, g) for r, g in ctx.enumerate_insertion_points()]
        assert all(r is None for r in results)

    def test_edge_spacing_respected_in_moves(self):
        design, _ = make_design(edge_rules=True)
        placement = Placement(design)
        occupancy = Occupancy(design, placement)
        blocker = place(design, placement, occupancy, "W3", 10, 2, gp_x=10)
        cell, ctx = context_for(design, placement, occupancy, "W3", 9.0, 2.0)
        gaps = ctx.gaps_in_row(2)
        left_gap = next(g for g in gaps if g.right_cell == blocker)
        result = ctx.evaluate(2, (left_gap,))
        assert result is not None
        # Edge rule W3-W3 needs 2 sites: blocker position must respect it.
        blocker_new = dict(result.moves).get(blocker, placement.x[blocker])
        assert blocker_new - (result.x + 3) >= 2

    def test_current_reference_ignores_gp_credit(self, empty_setup):
        design, placement, occupancy = empty_setup
        # Local cell sits left of its GP: pushing it right EARNS credit
        # under the GP reference (type C) but costs movement under
        # "current" (type A) — the defining MGL/MLL difference.
        place(design, placement, occupancy, "W4", 10, 2, gp_x=20)
        cell, ctx_gp = context_for(
            design, placement, occupancy, "W3", 9.0, 2.0, reference="gp"
        )
        ctx_cur = InsertionContext(
            design, occupancy, cell, design.chip_rect, reference="current"
        )
        gap = next(g for g in ctx_gp.gaps_in_row(2) if g.right_cell == 0)
        result_gp = ctx_gp.evaluate(2, (gap,))
        gap2 = next(g for g in ctx_cur.gaps_in_row(2) if g.right_cell == 0)
        result_cur = ctx_cur.evaluate(2, (gap2,))
        assert result_gp is not None and result_cur is not None
        # Placing the target at gp=9 pushes cell 0 right toward its GP:
        # negative cost (credit) for MGL, positive movement cost for MLL.
        assert result_gp.cost < 0 < result_cur.cost

    def test_invalid_reference_rejected(self, empty_setup):
        design, placement, occupancy = empty_setup
        with pytest.raises(ValueError):
            context_for(
                design, placement, occupancy, "W3", 0.0, 0.0, reference="xx"
            )


class TestEnumerate:
    def test_parity_filter(self, empty_setup):
        design, placement, occupancy = empty_setup
        _, ctx = context_for(design, placement, occupancy, "D3", 10.0, 1.0)
        rows = ctx.candidate_rows()
        assert all(r % 2 == 0 for r in rows)  # even-height cell, parity 0

    def test_rows_sorted_by_gp_proximity(self, empty_setup):
        design, placement, occupancy = empty_setup
        _, ctx = context_for(design, placement, occupancy, "W3", 10.0, 3.2)
        rows = ctx.candidate_rows()
        assert rows[0] == 3

    def test_lower_bound_is_valid(self, empty_setup):
        design, placement, occupancy = empty_setup
        place(design, placement, occupancy, "W4", 12, 2, gp_x=12)
        _, ctx = context_for(design, placement, occupancy, "W3", 11.0, 2.0)
        for bottom_row, gaps in ctx.enumerate_insertion_points():
            result = ctx.evaluate(bottom_row, gaps)
            if result is None:
                continue
            bound = ctx.target_cost_lower_bound(bottom_row, gaps)
            # The bound covers the target-only part; local-cell deltas are
            # non-negative here (everyone starts at GP), so it must hold.
            assert result.cost >= bound - 1e-9
