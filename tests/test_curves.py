"""Tests for displacement curves (paper §3.1, Fig. 4)."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.core.curves import DisplacementCurve, minimize_over_sites, sum_curves


def brute_right(cur, gp, off, w, x):
    return w * abs(max(cur, x + off) - gp)


def brute_left(cur, gp, off, w, x):
    return w * abs(min(cur, x - off) - gp)


class TestCurveTypes:
    """The four Fig. 4 types arise from side x (GP vs current) position."""

    def test_type_a_right_cell_gp_left(self):
        assert DisplacementCurve.pushed_right(5, 3, 2).curve_type() == "A"

    def test_type_b_left_cell_gp_right(self):
        assert DisplacementCurve.pushed_left(5, 9, 2).curve_type() == "B"

    def test_type_c_right_cell_gp_right(self):
        assert DisplacementCurve.pushed_right(5, 9, 2).curve_type() == "C"

    def test_type_d_left_cell_gp_left(self):
        assert DisplacementCurve.pushed_left(5, 1, 2).curve_type() == "D"

    def test_target_v(self):
        assert DisplacementCurve.target(4).curve_type() == "V"

    def test_constant(self):
        assert DisplacementCurve.constant(3.0).curve_type() == "constant"

    def test_mll_reference_collapses_c_to_a(self):
        """With gp == current (MLL's reference) only types A/B remain."""
        assert DisplacementCurve.pushed_right(5, 5, 2).curve_type() == "A"
        assert DisplacementCurve.pushed_left(5, 5, 2).curve_type() == "B"

    def test_types_a_b_convex_c_d_not(self):
        assert DisplacementCurve.pushed_right(5, 3, 2).is_convex()
        assert DisplacementCurve.pushed_left(5, 9, 2).is_convex()
        assert not DisplacementCurve.pushed_left(5, 1, 2).is_convex()


class TestEvaluation:
    def test_target_curve_values(self):
        curve = DisplacementCurve.target(4.0, weight=2.0)
        assert curve.value(4.0) == 0.0
        assert curve.value(6.0) == pytest.approx(4.0)
        assert curve.value(1.0) == pytest.approx(6.0)

    def test_pushed_right_flat_then_push(self):
        curve = DisplacementCurve.pushed_right(10.0, 8.0, 3.0)
        # Below the critical position (10 - 3 = 7) nothing moves.
        assert curve.value(0.0) == pytest.approx(2.0)
        assert curve.value(7.0) == pytest.approx(2.0)
        # Beyond it the cell is pushed right, away from its GP.
        assert curve.value(9.0) == pytest.approx(4.0)

    def test_pushed_right_type_c_dips_to_zero(self):
        curve = DisplacementCurve.pushed_right(5.0, 9.0, 2.0)
        assert curve.value(7.0) == pytest.approx(0.0)  # cell lands on GP

    @given(
        st.floats(-20, 20), st.floats(-20, 20),
        st.floats(0, 10), st.floats(0.1, 3), st.floats(-40, 40),
    )
    def test_property_right_matches_bruteforce(self, cur, gp, off, w, x):
        curve = DisplacementCurve.pushed_right(cur, gp, off, w)
        assert curve.value(x) == pytest.approx(
            brute_right(cur, gp, off, w, x), abs=1e-9
        )

    @given(
        st.floats(-20, 20), st.floats(-20, 20),
        st.floats(0, 10), st.floats(0.1, 3), st.floats(-40, 40),
    )
    def test_property_left_matches_bruteforce(self, cur, gp, off, w, x):
        curve = DisplacementCurve.pushed_left(cur, gp, off, w)
        assert curve.value(x) == pytest.approx(
            brute_left(cur, gp, off, w, x), abs=1e-9
        )


class TestSumAndMinimize:
    def test_sum_is_pointwise(self):
        curves = [
            DisplacementCurve.target(3.0),
            DisplacementCurve.pushed_right(5.0, 2.0, 1.0),
            DisplacementCurve.constant(1.5),
        ]
        total = sum_curves(curves)
        for x in (-3.0, 0.0, 2.5, 4.0, 7.0):
            expected = sum(c.value(x) for c in curves)
            assert total.value(x) == pytest.approx(expected)

    def test_sum_empty(self):
        assert sum_curves([]).value(5.0) == 0.0

    def test_minimize_simple_v(self):
        result = minimize_over_sites([DisplacementCurve.target(4.3)], 0, 10)
        assert result == (4, pytest.approx(0.3))

    def test_minimize_empty_range(self):
        assert minimize_over_sites([DisplacementCurve.target(1.0)], 5.2, 5.8) is None

    def test_minimize_tie_prefers_smaller_x(self):
        # Flat cost everywhere: pick the leftmost site.
        result = minimize_over_sites([DisplacementCurve.constant(2.0)], 3, 9)
        assert result[0] == 3

    def test_minimize_respects_bounds(self):
        result = minimize_over_sites([DisplacementCurve.target(100.0)], 0, 10)
        assert result[0] == 10  # clamped toward the target

    def test_minimize_matches_bruteforce_random(self):
        rng = random.Random(2)
        for _ in range(100):
            curves = []
            for _ in range(rng.randint(1, 5)):
                kind = rng.choice("rlt")
                cur, gp = rng.uniform(-10, 10), rng.uniform(-10, 10)
                off, w = rng.uniform(0, 5), rng.uniform(0.1, 2)
                if kind == "r":
                    curves.append(DisplacementCurve.pushed_right(cur, gp, off, w))
                elif kind == "l":
                    curves.append(DisplacementCurve.pushed_left(cur, gp, off, w))
                else:
                    curves.append(DisplacementCurve.target(gp, w))
            lo = rng.uniform(-20, 0)
            hi = lo + rng.uniform(0, 25)
            result = minimize_over_sites(curves, lo, hi)
            sites = range(math.ceil(lo), math.floor(hi) + 1)
            if not list(sites):
                assert result is None
                continue
            total = sum_curves(curves)
            best = min(total.value(x) for x in sites)
            assert result[1] == pytest.approx(best, abs=1e-9)


class TestSlopePattern:
    def test_target_slopes(self):
        assert DisplacementCurve.target(0.0, 2.0).slope_pattern() == [-2.0, 2.0]

    def test_type_c_slopes(self):
        pattern = DisplacementCurve.pushed_right(5, 9, 2, 1.5).slope_pattern()
        assert pattern == [0.0, -1.5, 1.5]
