"""Tests for the network simplex solver (and cross-checks vs networkx)."""

import random

import networkx as nx
import pytest

from repro.flow.graph import INFINITE, FlowGraph
from repro.flow.network_simplex import (
    InfeasibleFlowError,
    NetworkSimplex,
    solve_min_cost_flow,
)
from repro.flow.validate import check_complementary_slackness, check_feasible_flow


def simple_transport() -> FlowGraph:
    """source(0) -> {1, 2} -> sink(3), classic transportation instance."""
    graph = FlowGraph()
    graph.add_node(supply=4)
    graph.add_node()
    graph.add_node()
    graph.add_node(supply=-4)
    graph.add_edge(0, 1, capacity=3, cost=1)
    graph.add_edge(0, 2, capacity=3, cost=4)
    graph.add_edge(1, 3, capacity=3, cost=1)
    graph.add_edge(2, 3, capacity=3, cost=1)
    return graph


class TestBasicInstances:
    def test_transport_optimum(self):
        result = solve_min_cost_flow(simple_transport())
        # 3 units via cheap path (cost 2 each), 1 via expensive (cost 5).
        assert result.cost == 3 * 2 + 1 * 5
        assert result.flows == [3, 1, 3, 1]

    def test_certificate(self):
        graph = simple_transport()
        result = solve_min_cost_flow(graph)
        assert check_complementary_slackness(graph, result) == []

    def test_negative_cost_cycle_finite_cap_used(self):
        graph = FlowGraph()
        graph.add_node()
        graph.add_node()
        graph.add_edge(0, 1, capacity=2, cost=-3)
        graph.add_edge(1, 0, capacity=2, cost=1)
        result = solve_min_cost_flow(graph)
        assert result.cost == 2 * (-3) + 2 * 1

    def test_zero_supply_zero_flow(self):
        graph = FlowGraph()
        graph.add_node()
        graph.add_node()
        graph.add_edge(0, 1, capacity=5, cost=2)
        result = solve_min_cost_flow(graph)
        assert result.flows == [0]
        assert result.cost == 0

    def test_infeasible_detected(self):
        graph = FlowGraph()
        graph.add_node(supply=2)
        graph.add_node(supply=-2)
        graph.add_edge(0, 1, capacity=1, cost=0)
        with pytest.raises(InfeasibleFlowError):
            solve_min_cost_flow(graph)

    def test_imbalanced_supplies_rejected(self):
        graph = FlowGraph()
        graph.add_node(supply=1)
        graph.add_node()
        with pytest.raises(ValueError):
            NetworkSimplex(graph)

    def test_infinite_capacity_edge(self):
        graph = FlowGraph()
        graph.add_node(supply=10)
        graph.add_node(supply=-10)
        graph.add_edge(0, 1, capacity=INFINITE, cost=3)
        result = solve_min_cost_flow(graph)
        assert result.flows == [10]
        assert result.cost == 30

    def test_parallel_edges(self):
        graph = FlowGraph()
        graph.add_node(supply=4)
        graph.add_node(supply=-4)
        graph.add_edge(0, 1, capacity=2, cost=1)
        graph.add_edge(0, 1, capacity=2, cost=5)
        result = solve_min_cost_flow(graph)
        assert result.flows == [2, 2]
        assert result.cost == 12


class TestRandomizedVsNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            n = rng.randint(2, 10)
            graph = FlowGraph()
            for _ in range(n):
                graph.add_node()
            for _ in range(rng.randint(1, 25)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                graph.add_edge(u, v, capacity=rng.randint(0, 8),
                               cost=rng.randint(-6, 9))
            total = 0
            for node in range(n - 1):
                supply = rng.randint(-3, 3)
                graph.supplies[node] = supply
                total += supply
            graph.supplies[n - 1] = -total

            reference = nx.MultiDiGraph()
            for node in range(n):
                reference.add_node(node, demand=-graph.supplies[node])
            for edge in graph.edges:
                reference.add_edge(edge.tail, edge.head,
                                   capacity=edge.capacity, weight=edge.cost)
            try:
                expected = nx.min_cost_flow_cost(reference)
                feasible = True
            except nx.NetworkXUnfeasible:
                feasible = False

            if not feasible:
                with pytest.raises(InfeasibleFlowError):
                    solve_min_cost_flow(graph)
                continue
            result = solve_min_cost_flow(graph)
            assert result.cost == expected
            assert check_complementary_slackness(graph, result) == []
            assert check_feasible_flow(graph, result.flows) == []
