"""Tests for the prior-work baseline legalizers."""

import pytest

from repro.baselines import (
    AbacusLegalizer,
    LCPLegalizer,
    MLLLegalizer,
    TetrisLegalizer,
    legalize_abacus,
    legalize_lcp,
    legalize_mll,
    legalize_tetris,
)
from repro.checker import check_legal
from repro.core.mgl import LegalizationError
from repro.model.design import Design
from repro.model.placement import Placement


class TestTetris:
    def test_legal_output(self, small_design):
        placement = legalize_tetris(small_design)
        assert check_legal(placement).is_legal

    def test_fences_respected(self, fence_design):
        placement = legalize_tetris(fence_design)
        assert check_legal(placement).is_legal

    def test_never_moves_placed_cells(self, small_design):
        """Greedy: each cell's position is final once chosen."""
        legalizer = TetrisLegalizer(small_design)
        placement = legalizer.run()
        # Re-running yields the identical result (determinism).
        again = TetrisLegalizer(small_design).run()
        assert placement.x == again.x and placement.y == again.y

    def test_full_design_raises(self, basic_tech):
        design = Design(basic_tech, num_rows=1, num_sites=4, name="tiny")
        design.add_cell("a", basic_tech.type_named("S4"), 0, 0)
        design.add_cell("b", basic_tech.type_named("S4"), 0, 0)
        with pytest.raises(LegalizationError):
            legalize_tetris(design)

    def test_fixed_cells_respected(self, basic_tech):
        design = Design(basic_tech, num_rows=2, num_sites=20, name="fx")
        design.add_cell("f", basic_tech.type_named("S4"), 8, 0, fixed=True)
        design.add_cell("m", basic_tech.type_named("S4"), 9.0, 0.0)
        placement = legalize_tetris(design)
        assert placement.position(0) == (8, 0)
        assert check_legal(placement).is_legal


class TestMLL:
    def test_legal_output(self, small_design):
        placement = legalize_mll(small_design)
        assert check_legal(placement).is_legal

    def test_uses_current_reference(self, small_design):
        legalizer = MLLLegalizer(small_design)
        assert legalizer.reference == "current"

    def test_deterministic(self, small_design):
        a = legalize_mll(small_design)
        b = legalize_mll(small_design)
        assert a.x == b.x and a.y == b.y


class TestAbacus:
    def test_legal_output(self, small_design):
        placement = legalize_abacus(small_design)
        assert check_legal(placement).is_legal

    def test_gp_order_mostly_preserved(self, small_design):
        """Cells that were left of each other in GP stay ordered per row
        (modulo the rare documented order relaxation)."""
        legalizer = AbacusLegalizer(small_design)
        placement = legalizer.run()
        if legalizer.order_relaxations:
            pytest.skip("order was relaxed on this instance")
        design = small_design
        for row in range(design.num_rows):
            row_cells = [
                c for c in range(design.num_cells)
                if placement.y[c] <= row
                < placement.y[c] + design.cell_type_of(c).height
            ]
            row_cells.sort(key=lambda c: placement.x[c])
            gp_xs = [design.gp_x[c] for c in row_cells]
            # GP order holds approximately: allow equal/close values.
            for a, b in zip(gp_xs, gp_xs[1:]):
                assert a <= b + 15  # bounded local inversions only

    def test_deterministic(self, small_design):
        a = legalize_abacus(small_design)
        b = legalize_abacus(small_design)
        assert a.x == b.x and a.y == b.y


class TestLCP:
    def test_legal_output(self, small_design):
        placement = legalize_lcp(small_design)
        assert check_legal(placement).is_legal

    def test_refine_improves_quadratic_objective(self, small_design):
        seed = legalize_tetris(small_design)
        legalizer = LCPLegalizer(small_design)
        before = sum(
            (seed.x[c] - round(small_design.gp_x[c])) ** 2
            for c in small_design.movable_cells()
        )
        legalizer.refine(seed)
        after = sum(
            (seed.x[c] - round(small_design.gp_x[c])) ** 2
            for c in small_design.movable_cells()
        )
        assert after <= before
        assert check_legal(seed).is_legal

    def test_refine_preserves_rows_and_order(self, small_design):
        seed = legalize_tetris(small_design)
        rows = list(seed.y)
        order = sorted(
            range(small_design.num_cells), key=lambda c: (seed.y[c], seed.x[c])
        )
        LCPLegalizer(small_design).refine(seed)
        assert seed.y == rows
        assert sorted(
            range(small_design.num_cells), key=lambda c: (seed.y[c], seed.x[c])
        ) == order


class TestComparativeShape:
    def test_ours_beats_tetris(self, small_design):
        """The qualitative Table 2 ordering at small scale."""
        from repro.core.flowopt import optimize_fixed_row_order
        from repro.core.mgl import MGLegalizer
        from repro.core.params import LegalizerParams

        params = LegalizerParams(routability=False, scheduler_capacity=1)
        ours = MGLegalizer(small_design, params).run()
        optimize_fixed_row_order(ours, params)
        tetris = legalize_tetris(small_design)
        assert (
            ours.total_displacement_sites()
            < tetris.total_displacement_sites()
        )
