"""Tests for the HPWL-driven fixed-order optimizer (MrDP-style)."""

import random

import pytest

from repro.checker import check_legal
from repro.core.flowopt import FixedRowOrderProblem
from repro.core.hpwlopt import (
    HpwlProblem,
    build_hpwl_problem,
    optimize_hpwl_fixed_order,
    solve_hpwl_lp,
    solve_hpwl_mcf,
)
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams
from repro.model.netlist import Net, PinRef


def chain_with_net(gps, net_members, widths=None, hi=60):
    n = len(gps)
    widths = widths or [2] * n
    base = FixedRowOrderProblem(
        cells=list(range(n)),
        weights=[1] * n,
        widths=widths,
        gp_x=list(gps),
        dy=[0] * n,
        lower=[0] * n,
        upper=[hi - w for w in widths],
        pairs=[(i, i + 1, widths[i]) for i in range(n - 1)],
    )
    problem = HpwlProblem(base=base)
    problem.nets.append(([(m, widths[m] // 2) for m in net_members], [], 1))
    return problem


class TestSolvers:
    def test_net_pulls_cells_together(self):
        # Cells want 0 and 40 but share a net; high HPWL weight wins.
        problem = chain_with_net([0, 40], [0, 1])
        xs = solve_hpwl_mcf(problem, 100)
        assert xs[1] - xs[0] == 2  # abutted (minimum separation)

    def test_zero_weight_reduces_to_displacement(self):
        problem = chain_with_net([0, 40], [0, 1])
        xs = solve_hpwl_mcf(problem, 0)
        assert xs == [0, 40]

    def test_terminal_anchors_net(self):
        problem = chain_with_net([0, 10], [0, 1])
        problem.nets[0] = (problem.nets[0][0], [30], 1)  # fixed terminal
        xs = solve_hpwl_mcf(problem, 100)
        # The bounding box must stretch to 30; cells crowd toward it.
        assert xs[1] > 10

    def test_displacement_breaks_hpwl_ties(self):
        # One 2-pin net; any abutted pair has the same HPWL, so the
        # displacement tie-break centres the pair at the GPs' midpoint.
        problem = chain_with_net([10, 12], [0, 1])
        xs = solve_hpwl_mcf(problem, 100)
        assert xs == [10, 12]

    @pytest.mark.parametrize("seed", range(5))
    def test_mcf_matches_lp(self, seed):
        rng = random.Random(seed)
        for _ in range(8):
            n = rng.randint(2, 9)
            gps = sorted(rng.randint(0, 50) for _ in range(n))
            widths = [rng.randint(1, 3) for _ in range(n)]
            problem = chain_with_net(gps, rng.sample(range(n), 2), widths)
            for _ in range(rng.randint(0, 3)):
                members = rng.sample(range(n), min(n, rng.randint(2, 4)))
                terms = [rng.randint(0, 50)] if rng.random() < 0.4 else []
                problem.nets.append(
                    ([(m, widths[m] // 2) for m in members], terms, 1)
                )
            a = solve_hpwl_mcf(problem, 100)
            b = solve_hpwl_lp(problem, 100)
            assert problem.base.check_feasible(a) == []
            assert problem.objective(a, 100) == problem.objective(b, 100)


class TestIntegration:
    def test_reduces_hpwl_keeps_legal(self, small_design):
        rng = random.Random(8)
        for index in range(0, small_design.num_cells - 3, 3):
            small_design.netlist.add_net(
                Net(f"n{index}", [
                    PinRef(index),
                    PinRef(rng.randrange(small_design.num_cells)),
                ])
            )
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        stats = optimize_hpwl_fixed_order(placement, params)
        assert check_legal(placement).is_legal
        assert stats.hpwl_x_after <= stats.hpwl_x_before
        # The trade the paper warns about: displacement may grow.
        assert stats.disp_after >= 0

    def test_rows_and_order_preserved(self, small_design):
        small_design.netlist.add_net(Net("n", [PinRef(0), PinRef(1)]))
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        rows = list(placement.y)
        order = sorted(
            range(small_design.num_cells),
            key=lambda c: (placement.y[c], placement.x[c]),
        )
        optimize_hpwl_fixed_order(placement, params)
        assert placement.y == rows
        assert sorted(
            range(small_design.num_cells),
            key=lambda c: (placement.y[c], placement.x[c]),
        ) == order

    def test_no_nets_is_noop_or_displacement_only(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        before = list(placement.x)
        stats = optimize_hpwl_fixed_order(placement, params)
        # Without nets the objective is pure displacement; stage 3 already
        # optimized it, so HPWL opt must not regress anything.
        assert stats.hpwl_x_before == 0
        assert check_legal(placement).is_legal

    def test_build_problem_drops_degenerate_nets(self, small_design):
        small_design.netlist.add_net(Net("single", [PinRef(0)]))
        small_design.netlist.add_net(Net("pair", [PinRef(0), PinRef(1)]))
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        problem = build_hpwl_problem(placement, params)
        assert len(problem.nets) == 1

    def test_unknown_backend(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=1)
        placement = MGLegalizer(small_design, params).run()
        with pytest.raises(ValueError):
            optimize_hpwl_fixed_order(placement, params, backend="zzz")
