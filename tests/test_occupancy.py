"""Tests for the row occupancy structure."""

import pytest

from repro.core.occupancy import Occupancy, build_occupancy
from repro.model.placement import Placement


@pytest.fixture
def occupied(basic_tech):
    """Six single-row cells placed on known positions."""
    from repro.model.design import Design

    design = Design(basic_tech, num_rows=10, num_sites=60, name="occ")
    s2 = basic_tech.type_named("S2")
    positions = [(0, 0), (10, 0), (20, 0), (30, 2), (40, 2), (5, 4)]
    for index, (x, y) in enumerate(positions):
        design.add_cell(f"c{index}", s2, x, y)
    placement = Placement(design)
    occupancy = Occupancy(design, placement)
    for cell, (x, y) in enumerate(positions):
        placement.move(cell, x, y)
        occupancy.add(cell)
    return placement, occupancy


class TestAddRemove:
    def test_add_registers_all_rows(self, small_design):
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        tall = next(
            c for c in range(small_design.num_cells)
            if small_design.cell_type_of(c).height >= 2
        )
        placement.move(tall, 5, 6)
        occupancy.add(tall)
        height = small_design.cell_type_of(tall).height
        for row in range(6, 6 + height):
            assert tall in occupancy.row_cells(row)
        assert tall not in occupancy.row_cells(6 + height)

    def test_double_add_rejected(self, occupied):
        _, occupancy = occupied
        with pytest.raises(ValueError):
            occupancy.add(0)

    def test_remove(self, occupied):
        _, occupancy = occupied
        occupancy.remove(1)
        assert 1 not in occupancy.row_cells(0)
        assert not occupancy.is_placed(1)
        with pytest.raises(ValueError):
            occupancy.remove(1)

    def test_placed_cells(self, occupied):
        _, occupancy = occupied
        assert occupancy.placed_cells == {0, 1, 2, 3, 4, 5}

    def test_placed_cells_view_is_cached_and_refreshed(self, occupied):
        _, occupancy = occupied
        view = occupancy.placed_cells
        assert isinstance(view, frozenset)
        assert occupancy.placed_cells is view  # no mutation → same object
        occupancy.remove(5)
        assert occupancy.placed_cells == {0, 1, 2, 3, 4}
        occupancy.add(5)
        assert occupancy.placed_cells == {0, 1, 2, 3, 4, 5}

    def test_row_versions_bump_on_every_mutation(self, occupied):
        _, occupancy = occupied
        before = occupancy.row_version(0)
        untouched = occupancy.row_version(4)
        occupancy.update_x(1, 12)
        assert occupancy.row_version(0) == before + 1
        occupancy.remove(1)
        assert occupancy.row_version(0) == before + 2
        assert occupancy.row_version(4) == untouched

    def test_expensive_checks_gate(self, occupied):
        from repro.core.occupancy import (
            expensive_checks_enabled,
            set_expensive_checks,
        )

        _, occupancy = occupied
        # Corrupt through the (caller-owned) placement, not the
        # occupancy internals: cell 0 sits at x=0, so this desyncs the
        # mirror without bypassing the Occupancy API.
        occupancy.placement.x[0] = 999
        previous = set_expensive_checks(False)
        try:
            assert not expensive_checks_enabled()
            occupancy.verify_consistent()  # gated off: no error
            set_expensive_checks(True)
            with pytest.raises(AssertionError):
                occupancy.verify_consistent()
        finally:
            set_expensive_checks(previous)
            occupancy.placement.x[0] = 0


class TestQueries:
    def test_row_cells_sorted(self, occupied):
        _, occupancy = occupied
        xs = [occupancy.placement.x[c] for c in occupancy.row_cells(0)]
        assert xs == sorted(xs)

    def test_cells_in_range(self, occupied):
        _, occupancy = occupied
        assert occupancy.cells_in_range(0, 8, 25) == [1, 2]

    def test_cells_in_range_catches_overhang(self, occupied):
        # Cell 0 at x=0; its width extends past x=0 so a range starting
        # at x=1 must still include it.
        _, occupancy = occupied
        assert 0 in occupancy.cells_in_range(0, 1, 5)

    def test_neighbors(self, occupied):
        _, occupancy = occupied
        assert occupancy.left_neighbor(0, 10) == 0
        assert occupancy.right_neighbor(0, 11) == 2
        assert occupancy.left_neighbor(0, 0) is None
        assert occupancy.right_neighbor(0, 50) is None

    def test_neighbor_exclusion(self, occupied):
        _, occupancy = occupied
        assert occupancy.right_neighbor(0, 10, exclude=1) == 2

    def test_neighbors_of(self, occupied):
        _, occupancy = occupied
        lefts, rights = occupancy.neighbors_of(1)
        assert lefts == [0]
        assert rights == [2]


class TestUpdateX:
    def test_shift_preserving_order(self, occupied):
        placement, occupancy = occupied
        occupancy.update_x(1, 14)
        assert placement.x[1] == 14
        assert occupancy.cells_in_range(0, 13, 15) == [1]
        occupancy.verify_consistent()

    def test_reorder_detected(self, occupied):
        _, occupancy = occupied
        with pytest.raises(AssertionError):
            occupancy.update_x(1, 25)  # would jump past cell 2 at x=20

    def test_noop_shift(self, occupied):
        placement, occupancy = occupied
        occupancy.update_x(1, 10)
        occupancy.verify_consistent()


def test_build_occupancy(small_design):
    placement = Placement(small_design)
    placement.move(0, 3, 3)
    placement.move(1, 9, 9)
    occupancy = build_occupancy(small_design, placement, [0, 1])
    assert occupancy.is_placed(0) and occupancy.is_placed(1)
    assert not occupancy.is_placed(2)
