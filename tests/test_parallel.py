"""Tests for the process-based parallel scheduler backend (§3.5).

The load-bearing property: for any scheduler capacity, the placement
produced with a process pool is **bit-identical** to the in-process
path's — workers are an execution detail, never a semantic one.  The
failure-handling tests then check that no cell is ever lost to the
parallel infrastructure: crashes, pickle failures, and spawn failures
all degrade to in-process evaluation.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.core.parallel as parallel_mod
from repro.checker import check_legal
from repro.core.mgl import MGLegalizer
from repro.core.occupancy import Occupancy
from repro.core.parallel import ParallelEvaluator, ParallelUnavailable
from repro.core.params import LegalizerParams
from repro.core.scheduler import WindowScheduler
from repro.model.design import Design
from repro.model.placement import Placement
from repro.model.technology import CellType, Technology


def build_design(seed: int, density: float) -> Design:
    rng = random.Random(seed)
    tech = Technology(
        cell_types=[
            CellType("S2", 2, 1),
            CellType("S3", 3, 1),
            CellType("D2", 2, 2),
            CellType("T3", 3, 3),
        ]
    )
    rows = rng.choice([8, 12])
    sites = rng.choice([40, 60])
    design = Design(tech, num_rows=rows, num_sites=sites, name=f"par{seed}")
    target = density * rows * sites
    area = 0
    index = 0
    while area < target:
        cell_type = rng.choice(tech.cell_types)
        design.add_cell(
            f"c{index}",
            cell_type,
            rng.uniform(0, sites - cell_type.width),
            rng.uniform(0, rows - cell_type.height),
        )
        area += cell_type.width * cell_type.height
        index += 1
    return design


def positions(design: Design, capacity: int, workers: int):
    params = LegalizerParams(
        routability=False,
        scheduler_capacity=capacity,
        scheduler_workers=workers,
    )
    placement = MGLegalizer(design, params).run()
    return list(placement.x), list(placement.y)


class TestBitIdenticalPlacements:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), density=st.floats(0.25, 0.6))
    def test_workers_never_change_the_placement(self, seed, density):
        """capacity sweep (1, 2, 8) x workers (0, 2): identical hashes."""
        design = build_design(seed, density)
        for capacity in (1, 2, 8):
            serial = positions(design, capacity, workers=0)
            pooled = positions(design, capacity, workers=2)
            assert pooled == serial, (
                f"workers diverged at capacity {capacity}"
            )

    def test_worker_counts_and_stats_agree(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=8)
        serial = MGLegalizer(small_design, params)
        serial_placement = serial.run()

        params2 = LegalizerParams(
            routability=False, scheduler_capacity=8, scheduler_workers=2
        )
        pooled = MGLegalizer(small_design, params2)
        pooled_placement = pooled.run()

        assert serial_placement.x == pooled_placement.x
        assert serial_placement.y == pooled_placement.y
        # The pure evaluation work is identical, wherever it ran.
        assert (
            pooled.stats["insertions_evaluated"]
            == serial.stats["insertions_evaluated"]
        )
        assert pooled.stats["parallel_batches"] > 0
        assert pooled.stats["parallel_tasks"] > 0
        assert pooled.stats["parallel_worker_failures"] == 0
        assert pooled.stats["scheduler_workers_spawned"] == 2

    def test_routability_guard_reconstructed_in_workers(self, rail_design):
        """Workers rebuild the guard from params; results must not drift."""
        for workers in (0, 2):
            params = LegalizerParams(
                routability=True,
                scheduler_capacity=6,
                scheduler_workers=workers,
            )
            placement = MGLegalizer(rail_design, params).run()
            if workers == 0:
                reference = (list(placement.x), list(placement.y))
            else:
                assert (list(placement.x), list(placement.y)) == reference


class TestFailureFallbacks:
    def test_pickle_failure_degrades_to_in_process(
        self, small_design, monkeypatch
    ):
        """A delta that cannot be pickled must not lose any cell."""
        def raising_dumps(*_args, **_kwargs):
            raise RuntimeError("simulated pickle failure")

        monkeypatch.setattr(parallel_mod.pickle, "dumps", raising_dumps)
        params = LegalizerParams(
            routability=False, scheduler_capacity=8, scheduler_workers=2
        )
        legalizer = MGLegalizer(small_design, params)
        placement = legalizer.run()
        assert check_legal(placement).is_legal
        # Every task fell back in-process; both workers were retired.
        assert legalizer.stats["parallel_fallbacks"] > 0
        assert legalizer.stats["parallel_worker_failures"] == 2
        # And the placement still matches the pure serial path.
        serial = MGLegalizer(
            small_design,
            LegalizerParams(routability=False, scheduler_capacity=8),
        ).run()
        assert placement.x == serial.x and placement.y == serial.y

    def test_killed_worker_degrades_to_in_process(self, small_design):
        """A worker killed mid-run is retired; its share is re-evaluated."""
        params = LegalizerParams(
            routability=False, scheduler_capacity=8, scheduler_workers=2
        )
        legalizer = MGLegalizer(small_design, params)
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        scheduler = WindowScheduler(legalizer, occupancy)

        original_evaluate = ParallelEvaluator.evaluate_batch
        killed = []

        def kill_then_evaluate(self, batch, want_payloads=False):
            if not killed:
                self.workers[0].process.terminate()
                self.workers[0].process.join(timeout=5.0)
                killed.append(True)
            return original_evaluate(self, batch, want_payloads)

        try:
            ParallelEvaluator.evaluate_batch = kill_then_evaluate
            scheduler.run()
        finally:
            ParallelEvaluator.evaluate_batch = original_evaluate

        assert killed, "no multi-cell batch was ever formed"
        assert check_legal(placement).is_legal
        assert legalizer.stats["parallel_worker_failures"] >= 1
        serial = MGLegalizer(
            small_design,
            LegalizerParams(routability=False, scheduler_capacity=8),
        ).run()
        assert placement.x == serial.x and placement.y == serial.y

    def test_retired_worker_counted_in_metrics_registry(self, small_design):
        """Worker retirement must be visible in scheduler.worker_retired."""
        from repro.perf import PerfRecorder

        recorder = PerfRecorder()
        params = LegalizerParams(
            routability=False, scheduler_capacity=8, scheduler_workers=2
        )
        legalizer = MGLegalizer(small_design, params, recorder=recorder)
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        scheduler = WindowScheduler(legalizer, occupancy)

        original_evaluate = ParallelEvaluator.evaluate_batch
        killed = []

        def kill_then_evaluate(self, batch, want_payloads=False):
            if not killed:
                self.workers[0].process.terminate()
                self.workers[0].process.join(timeout=5.0)
                killed.append(True)
            return original_evaluate(self, batch, want_payloads)

        try:
            ParallelEvaluator.evaluate_batch = kill_then_evaluate
            scheduler.run()
        finally:
            ParallelEvaluator.evaluate_batch = original_evaluate

        assert killed, "no multi-cell batch was ever formed"
        retired = recorder.registry.counters.get("scheduler.worker_retired", 0)
        assert retired >= 1
        assert retired == legalizer.stats["parallel_worker_failures"]

    def test_spawn_failure_falls_back_to_serial(
        self, small_design, monkeypatch
    ):
        """No pool at all: the scheduler silently continues in-process."""
        class BoomContext:
            def Pipe(self):
                raise RuntimeError("no pipes today")

            def Process(self, *args, **kwargs):  # pragma: no cover
                raise RuntimeError("no processes either")

        monkeypatch.setattr(
            parallel_mod, "_pick_context", lambda: BoomContext()
        )
        params = LegalizerParams(
            routability=False, scheduler_capacity=8, scheduler_workers=2
        )
        legalizer = MGLegalizer(small_design, params)
        placement = legalizer.run()
        assert check_legal(placement).is_legal
        serial = MGLegalizer(
            small_design,
            LegalizerParams(routability=False, scheduler_capacity=8),
        ).run()
        assert placement.x == serial.x and placement.y == serial.y


class TestPoolLifecycle:
    def test_journal_detached_and_workers_reaped(self, small_design):
        params = LegalizerParams(
            routability=False, scheduler_capacity=8, scheduler_workers=2
        )
        legalizer = MGLegalizer(small_design, params)
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        scheduler = WindowScheduler(legalizer, occupancy)
        scheduler.run()
        assert occupancy.journal is None
        if scheduler.parallel is not None:
            for worker in scheduler.parallel.workers:
                assert not worker.process.is_alive()

    def test_journal_records_all_mutation_kinds(self, small_design):
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        journal = []
        occupancy.set_journal(journal)
        placement.move(0, 10, 2)
        occupancy.add(0)
        occupancy.update_x(0, 12)
        occupancy.remove(0)
        assert journal == [
            ("a", 0, 10, 2), ("m", 0, 12, 0), ("r", 0, 0, 0)
        ]
        occupancy.set_journal(None)
        placement.move(1, 30, 2)
        occupancy.add(1)
        assert journal == [
            ("a", 0, 10, 2), ("m", 0, 12, 0), ("r", 0, 0, 0)
        ]

    def test_unavailable_when_no_worker_comes_up(self, small_design):
        params = LegalizerParams(routability=False, scheduler_capacity=4)
        legalizer = MGLegalizer(small_design, params)
        placement = Placement(small_design)
        occupancy = Occupancy(small_design, placement)
        with pytest.raises(ParallelUnavailable):
            # Zero workers requested: nothing can come up.
            ParallelEvaluator(legalizer, occupancy, 0)
        assert occupancy.journal is None
