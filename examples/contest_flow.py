#!/usr/bin/env python3
"""Contest-style flow: fences + rails + IO pins, ours vs the greedy baseline.

Run:
    python examples/contest_flow.py [benchmark-name]

Builds one ICCAD-2017-style stand-in benchmark (default: fft_2_md2),
legalizes it with the full routability-aware flow and with the greedy
baseline, prints a Table-1-style comparison row for each, and writes SVG
renderings (placement + displacement vectors) into examples/out/.
"""

import sys
from pathlib import Path

from repro import LegalizerParams, legalize
from repro.baselines import legalize_tetris
from repro.benchgen import iccad2017_suite
from repro.checker import check_legal, contest_score
from repro.viz import render_displacement_svg, render_placement_svg

OUT = Path(__file__).parent / "out"


def report(tag: str, placement) -> None:
    legal = check_legal(placement)
    score = contest_score(placement)
    print(f"{tag:10s} legal={legal.is_legal}  "
          f"avg={score.avg_displacement:.3f}  max={score.max_displacement:.2f}  "
          f"pins={score.pin_violations}  edges={score.edge_violations}  "
          f"S={score.score:.3f}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fft_2_md2"
    case = iccad2017_suite(scale=0.01, names=[name])
    if not case:
        raise SystemExit(f"unknown benchmark {name!r}; see Table 1 names")
    design = case[0].build()
    print(f"benchmark {name}: {design} density={design.density():.2f}")

    ours = legalize(design, LegalizerParams(scheduler_capacity=4)).placement
    baseline = legalize_tetris(design)

    print("\nTable-1-style rows:")
    report("ours", ours)
    report("champion*", baseline)
    print("(* greedy routability-blind stand-in, see DESIGN.md)")

    OUT.mkdir(exist_ok=True)
    (OUT / f"{name}_ours.svg").write_text(render_placement_svg(ours))
    (OUT / f"{name}_ours_disp.svg").write_text(render_displacement_svg(ours))
    (OUT / f"{name}_baseline_disp.svg").write_text(
        render_displacement_svg(baseline)
    )
    print(f"\nSVGs written to {OUT}/")


if __name__ == "__main__":
    main()
