#!/usr/bin/env python3
"""Hand-built design showing fences, P/G rails, and pin-aware insertion.

Run:
    python examples/fence_and_rails.py

Constructs a design explicitly through the public model API (no
generator): a fence region, the standard M2/M3 P/G grid, cell types with
signal pins (recreating the Fig. 1 situations), and a small netlist; runs
the quadratic global placer for GP input, legalizes with and without the
routability guard, and prints the violation counts side by side.
"""

from pathlib import Path

from repro import Design, LegalizerParams, legalize
from repro.checker import check_legal, count_routability_violations
from repro.gp import quadratic_global_placement
from repro.model import FenceRegion, Net, PinRef, Rect
from repro.model.rails import IOPin, standard_pg_grid
from repro.model.technology import CellType, EdgeSpacingTable, PinShape, Technology

OUT = Path(__file__).parent / "out"


def build_design() -> Design:
    technology = Technology(
        cell_types=[
            CellType(
                "INV", 2, 1,
                pins=(
                    PinShape("a", 1, Rect(0.05, 0.2, 0.2, 0.6)),
                    PinShape("z", 2, Rect(0.25, 1.2, 0.38, 1.6)),
                ),
                left_edge=1, right_edge=1,
            ),
            CellType(
                "NAND", 3, 1,
                pins=(PinShape("a", 1, Rect(0.1, 0.3, 0.3, 0.7)),),
            ),
            CellType(
                "DFF2", 4, 2,
                pins=(PinShape("d", 1, Rect(0.2, 0.5, 0.4, 0.9)),
                      PinShape("q", 2, Rect(0.5, 2.2, 0.65, 2.7))),
            ),
            CellType("MACRO3", 5, 3),
        ],
        edge_spacing=EdgeSpacingTable([(1, 1, 1)]),
    )

    design = Design(technology, num_rows=24, num_sites=120, name="handmade")
    design.add_fence(FenceRegion(1, "core_cluster", [Rect(30, 6, 80, 16)]))
    design.rails = standard_pg_grid(
        design.chip_rect_length_units, design.row_height,
        m2_pitch_rows=6, m3_pitch=8.0,
    )
    design.rails.add_io_pin(IOPin("clk_pad", 2, Rect(11.5, 10.0, 12.3, 10.8)))

    import random
    rng = random.Random(99)
    for index in range(420):
        kind = rng.choices(
            ["INV", "NAND", "DFF2", "MACRO3"], weights=[60, 25, 10, 5]
        )[0]
        cell_type = technology.type_named(kind)
        in_fence = rng.random() < 0.2
        fence_id = 1 if in_fence else 0
        if in_fence:
            gx = rng.uniform(30, 80 - cell_type.width)
            gy = rng.uniform(6, 16 - cell_type.height)
        else:
            gx = rng.uniform(0, 120 - cell_type.width)
            gy = rng.uniform(0, 24 - cell_type.height)
        design.add_cell(f"u{index}", cell_type, gx, gy, fence_id=fence_id)

    for index in range(0, 400, 4):
        design.netlist.add_net(
            Net(f"n{index}", [PinRef(index), PinRef(index + 1),
                              PinRef(index + 2)])
        )
    design.validate()
    return design


def main() -> None:
    design = build_design()
    quadratic_global_placement(design, seed=3)
    print(f"{design} density={design.density():.2f}")

    guarded = legalize(design, LegalizerParams(scheduler_capacity=4))
    blind = legalize(
        design, LegalizerParams(routability=False, scheduler_capacity=4)
    )

    for tag, result in (("guarded", guarded), ("blind", blind)):
        placement = result.placement
        assert check_legal(placement).is_legal
        report = count_routability_violations(placement)
        print(f"{tag:8s} pin_short={report.pin_short:3d}  "
              f"pin_access={report.pin_access:3d}  "
              f"edge={report.edge_violations:3d}  "
              f"avg_disp={result.after_flow.avg_disp:.3f}")

    from repro.viz import render_placement_svg

    OUT.mkdir(exist_ok=True)
    (OUT / "handmade.svg").write_text(
        render_placement_svg(guarded.placement, show_rails=True)
    )
    print(f"SVG written to {OUT}/handmade.svg")


if __name__ == "__main__":
    main()
