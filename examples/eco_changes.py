#!/usr/bin/env python3
"""ECO (engineering change order) flow: incremental legalization.

Run:
    python examples/eco_changes.py

Legalizes a design once, then plays three typical ECO scenarios without
re-running the full flow:

1. a handful of cells get new GP targets (e.g. after a timing fix) and
   are ripped up and re-inserted;
2. new cells are added to the design and placed into the existing
   placement;
3. a cell is upsized (its master swapped for a wider one) and re-placed.

After each step the placement is still legal and the report shows how
many untouched cells were disturbed.
"""

from repro import LegalizerParams, legalize
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal
from repro.core.incremental import IncrementalLegalizer


def main() -> None:
    design = generate_design(
        SyntheticSpec(
            name="eco_demo",
            cells_by_height={1: 600, 2: 40, 3: 15},
            density=0.6,
            seed=23,
        )
    )
    params = LegalizerParams(routability=False, scheduler_capacity=1)
    placement = legalize(design, params).placement
    print(f"initial: {design.num_cells} cells, "
          f"legal={check_legal(placement).is_legal}")

    eco = IncrementalLegalizer(design, placement, params)

    # --- Scenario 1: retargeted cells -------------------------------
    victims = design.movable_cells()[:6]
    for cell in victims:
        design.cells[cell].gp_x = min(
            design.num_sites - design.cell_type_of(cell).width,
            design.cells[cell].gp_x + 30,
        )
    design._gp_x_array = None
    result = eco.relegalize(victims)
    print(f"retarget: re-placed {len(result.placed)} cells, "
          f"disturbed {len(result.disturbed)} others "
          f"({result.total_disturbance_sites} sites), "
          f"legal={eco.verify()}")

    # --- Scenario 2: new cells --------------------------------------
    new_cells = []
    for index in range(4):
        cell = design.add_cell(
            f"eco_add{index}",
            design.technology.cell_types[index % 2],
            20.0 + 15 * index,
            4.0 + index,
        )
        placement.x.append(0)
        placement.y.append(0)
        new_cells.append(cell)
    for cell in new_cells:
        result = eco.insert_new(cell)
    print(f"additions: placed {len(new_cells)} new cells, "
          f"legal={eco.verify()}")

    # --- Scenario 3: upsized cell ------------------------------------
    victim = design.movable_cells()[10]
    wider = max(design.technology.cell_types, key=lambda ct: ct.width)
    design.cells[victim].cell_type = wider
    result = eco.relegalize([victim])
    print(f"upsize:   cell {victim} now {wider.width} sites wide, "
          f"disturbed {len(result.disturbed)} cells, legal={eco.verify()}")


if __name__ == "__main__":
    main()
