#!/usr/bin/env python3
"""Table-2-style comparison of all five legalizers on one benchmark.

Run:
    python examples/compare_legalizers.py [benchmark-name] [scale]

Default: fft_2 at scale 0.01 (~320 cells).  Reports total displacement
(sites) and runtime for tetris / MLL / Abacus-style / LCP-style / ours,
matching the protocol of the paper's second experiment (total
displacement objective, no fences, no routability constraints).
"""

import sys
import time

from repro.baselines import (
    legalize_abacus,
    legalize_lcp,
    legalize_mll,
    legalize_tetris,
)
from repro.benchgen import ispd2015_suite
from repro.checker import check_legal
from repro.core.flowopt import optimize_fixed_row_order
from repro.core.mgl import MGLegalizer
from repro.core.params import LegalizerParams


def run_ours(design):
    params = LegalizerParams(
        routability=False, use_matching=False, scheduler_capacity=1
    )
    placement = MGLegalizer(design, params).run()
    optimize_fixed_row_order(placement, params)
    return placement


ALGOS = [
    ("tetris", legalize_tetris),
    ("mll [12]", legalize_mll),
    ("abacus [7]", legalize_abacus),
    ("lcp [9]", legalize_lcp),
    ("ours", run_ours),
]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fft_2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    cases = ispd2015_suite(scale=scale, names=[name])
    if not cases:
        raise SystemExit(f"unknown benchmark {name!r}; see Table 2 names")
    design = cases[0].build()
    print(f"benchmark {name}: {design} density={design.density():.2f}\n")

    rows = []
    for tag, algorithm in ALGOS:
        start = time.perf_counter()
        placement = algorithm(design)
        elapsed = time.perf_counter() - start
        assert check_legal(placement).is_legal, tag
        rows.append((tag, placement.total_displacement_sites(), elapsed))

    best = min(total for _, total, _ in rows)
    print(f"{'algorithm':12s} {'total disp':>12s} {'norm':>6s} {'time':>7s}")
    for tag, total, elapsed in rows:
        print(f"{tag:12s} {total:12.0f} {total / best:6.2f} {elapsed:6.1f}s")


if __name__ == "__main__":
    main()
