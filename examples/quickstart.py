#!/usr/bin/env python3
"""Quickstart: generate a mixed-cell-height design and legalize it.

Run:
    python examples/quickstart.py

Builds a ~1k-cell synthetic design (mixed 1-4 row cells, one fence
region), runs the paper's three-stage flow, and prints the displacement
metrics after each stage plus the final legality verdict.
"""

from repro import LegalizerParams, legalize
from repro.benchgen import SyntheticSpec, generate_design
from repro.checker import check_legal, contest_score


def main() -> None:
    spec = SyntheticSpec(
        name="quickstart",
        cells_by_height={1: 900, 2: 60, 3: 25, 4: 15},
        density=0.65,
        seed=7,
        num_fences=1,
        with_rails=True,
        num_io_pins=12,
        with_edge_rules=True,
    )
    design = generate_design(spec)
    print(f"design: {design}")
    print(f"density: {design.density():.2f}")

    result = legalize(design, LegalizerParams(scheduler_capacity=4))

    print("\nstage metrics (displacement in row heights):")
    print(f"  after MGL:      avg={result.after_mgl.avg_disp:.3f}  "
          f"max={result.after_mgl.max_disp:.2f}  "
          f"({result.after_mgl.seconds:.1f}s)")
    if result.after_matching:
        print(f"  after matching: avg={result.after_matching.avg_disp:.3f}  "
              f"max={result.after_matching.max_disp:.2f}  "
              f"({result.after_matching.seconds:.1f}s)")
    if result.after_flow:
        print(f"  after flow opt: avg={result.after_flow.avg_disp:.3f}  "
              f"max={result.after_flow.max_disp:.2f}  "
              f"({result.after_flow.seconds:.1f}s)")

    report = check_legal(result.placement)
    print(f"\nlegal: {report.is_legal}")

    score = contest_score(result.placement)
    print(f"contest score S = {score.score:.3f}  "
          f"(pin violations {score.pin_violations}, "
          f"edge violations {score.edge_violations}, "
          f"HPWL ratio {score.hpwl_ratio:+.4f})")


if __name__ == "__main__":
    main()
